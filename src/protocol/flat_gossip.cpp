#include "protocol/flat_gossip.hpp"

#include <algorithm>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace gossip::protocol {

namespace {

std::vector<double> lut_weights(const FlatGossipParams& params) {
  if (params.fanout == nullptr) {
    throw std::invalid_argument("flat gossip requires a fanout distribution");
  }
  auto weights = params.fanout->pmf_vector(params.lut_tail_epsilon);
  // Unbounded distributions truncate at the tail epsilon; clamp anything
  // that still exceeds the 8.8 support into the last representable bucket
  // rather than rejecting the distribution outright.
  const auto cap = static_cast<std::size_t>(rng::Lut88Sampler::kMaxValue) + 1;
  if (weights.size() > cap) {
    double tail = 0.0;
    for (std::size_t k = cap; k < weights.size(); ++k) tail += weights[k];  // LINT-ALLOW(float-accumulation): one-time LUT construction over a fixed pmf order, identical on every run
    weights.resize(cap);
    weights.back() += tail;
  }
  return weights;
}

}  // namespace

FlatGossipEngine::FlatGossipEngine(FlatGossipParams params)
    : params_(std::move(params)), fanout_lut_(lut_weights(params_)) {
  if (params_.num_nodes < 2) {
    throw std::invalid_argument("flat gossip requires >= 2 nodes");
  }
  if (params_.num_nodes > kMaxSupportedNodes) {
    throw std::invalid_argument(
        "flat gossip supports at most 2^31 nodes (32-bit NodeId)");
  }
  if (params_.source >= params_.num_nodes) {
    throw std::out_of_range("flat gossip source out of range");
  }
  if (!(params_.nonfailed_ratio > 0.0 && params_.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("flat gossip requires q in (0, 1]");
  }
  if (!(params_.loss_probability >= 0.0 && params_.loss_probability <= 1.0)) {
    throw std::invalid_argument("flat gossip requires loss in [0, 1]");
  }
  if (params_.topology != nullptr) {
    membership::validate_csr_adjacency(*params_.topology);
    if (params_.topology->num_nodes() != params_.num_nodes) {
      throw std::invalid_argument(
          "flat gossip topology node count must match num_nodes");
    }
  }
  const auto n = static_cast<std::size_t>(params_.num_nodes);
  alive_.assign(n, true);
  seen_.assign(n, false);
  // A frontier can never exceed n, so reserving up front makes every
  // subsequent run_once allocation-free regardless of the seed.
  frontier_.reserve(n);
  next_.reserve(n);
  fanouts_.reserve(n);
  // A sender emits at most min(LUT max, degree) targets, and complement
  // sampling excludes fewer indices than it emits, so one LUT-sized scratch
  // each keeps topology mode allocation-free too.
  targets_.reserve(
      static_cast<std::size_t>(fanout_lut_.max_value()) + 1);
  if (params_.topology != nullptr) {
    excluded_.reserve(
        static_cast<std::size_t>(fanout_lut_.max_value()) + 1);
  }
}

void FlatGossipEngine::draw_alive(rng::RngStream& rng) {
  const auto n = static_cast<std::size_t>(params_.num_nodes);
  if (params_.nonfailed_ratio >= 1.0) {
    alive_.assign(n, true);
    return;
  }
  // Batched Bernoulli: one raw 64-bit draw per node compared against a
  // fixed-point threshold, accumulated a word at a time — no doubles, no
  // per-bit store.
  alive_.assign(n, false);
  const auto threshold = static_cast<std::uint64_t>(
      params_.nonfailed_ratio * 18446744073709551616.0);  // q * 2^64
  for (std::size_t v = 0; v < n; ++v) {
    if (v == params_.source || rng() < threshold) alive_.set(v);
  }
}

FlatGossipResult FlatGossipEngine::run_once(rng::RngStream& rng,
                                            obs::Probe* probe) {
  const auto n = static_cast<std::uint64_t>(params_.num_nodes);
  const auto n_minus_1 = n - 1;
  const auto source = static_cast<std::uint32_t>(params_.source);
  const double loss = params_.loss_probability;

  draw_alive(rng);
  seen_.reset_all();
  seen_.set(source);

  FlatGossipResult result;
  result.num_nodes = n;

  // Round 0 is the injection: only the source is informed, nothing is on
  // the wire yet. Emitting it keeps the flat trace aligned with the DES
  // trace (hop-0 receipt at the source) so their CSVs diff row for row.
  std::uint64_t informed = 1;
  if (probe != nullptr) {
    obs::RoundSample inject;
    inject.newly_informed = 1;
    inject.informed = 1;
    probe->on_round(inject);
  }

  frontier_.clear();
  frontier_.push_back(source);
  while (!frontier_.empty()) {
    ++result.rounds;
    // Per-round deltas come from counters the result carries anyway, so
    // tracing adds no work inside the per-message loops below.
    const std::uint64_t round_sent = result.messages_sent;
    const std::uint64_t round_dup = result.duplicate_receipts;
    const std::uint64_t round_loss = result.losses;
    const std::uint64_t round_dead = result.dead_receipts;
    // Phase 1: batched fanout draws for the whole generation — a tight LUT
    // loop, one 16-bit code per sender.
    fanouts_.clear();
    if (fanouts_.capacity() < frontier_.size()) {
      fanouts_.reserve(frontier_.size());
    }
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      fanouts_.push_back(
          static_cast<std::uint16_t>(fanout_lut_.sample(rng)));
    }
    // Phase 2: target selection and infection.
    next_.clear();
    const membership::CsrAdjacency* topo = params_.topology.get();
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      const std::uint32_t self = frontier_[i];
      if (topo != nullptr) {
        // Neighbor-restricted selection: f = min(draw, degree) distinct
        // uniform picks from self's CSR slice, index-only.
        const auto nbrs = topo->neighbors_of(self);
        const auto degree = static_cast<std::uint64_t>(nbrs.size());
        const std::uint64_t f =
            std::min<std::uint64_t>(fanouts_[i], degree);
        if (f == 0) continue;
        targets_.clear();
        if (f == degree) {
          // The whole neighborhood; no draws needed.
          for (const std::uint32_t t : nbrs) targets_.push_back(t);
        } else if (f * 2 <= degree) {
          // Sparse pick: rejection-sample indices, linear dup scan over the
          // few accepted so far (f <= LUT max = 255).
          while (targets_.size() < f) {
            const auto pick =
                static_cast<std::uint32_t>(rng.next_below(degree));
            const std::uint32_t t = nbrs[pick];
            if (std::find(targets_.begin(), targets_.end(), t) ==
                targets_.end()) {
              targets_.push_back(t);
            }
          }
        } else {
          // Dense pick (degree/2 < f < degree): rejection on the COMPLEMENT
          // — draw the degree - f excluded indices (the sparse side), then
          // emit every non-excluded neighbor. Reachable only when
          // degree < 2 * LUT max, so the scans stay small.
          excluded_.clear();
          const std::uint64_t excluded_count = degree - f;
          while (excluded_.size() < excluded_count) {
            const auto pick =
                static_cast<std::uint32_t>(rng.next_below(degree));
            if (std::find(excluded_.begin(), excluded_.end(), pick) ==
                excluded_.end()) {
              excluded_.push_back(pick);
            }
          }
          for (std::uint32_t idx = 0; idx < degree; ++idx) {
            if (std::find(excluded_.begin(), excluded_.end(), idx) ==
                excluded_.end()) {
              targets_.push_back(nbrs[idx]);
            }
          }
        }
        result.messages_sent += targets_.size();
        for (const std::uint32_t t : targets_) {
          if (loss > 0.0 && rng.bernoulli(loss)) {  // lost in flight
            ++result.losses;
            continue;
          }
          if (!alive_[t]) {  // fail-stop: dropped at a crashed member
            ++result.dead_receipts;
            continue;
          }
          if (seen_[t]) {
            ++result.duplicate_receipts;
            continue;
          }
          seen_.set(t);
          next_.push_back(t);
        }
        continue;
      }
      const auto fanout = static_cast<std::uint64_t>(
          std::min<std::uint64_t>(fanouts_[i], n_minus_1));
      if (fanout == 0) continue;
      targets_.clear();
      if (fanout * 2 >= n_minus_1) {
        // Degenerate small-n case: rejection would thrash; fall back to the
        // exact Floyd sampler (allocates only in this branch, which cannot
        // be reached once n > 2 * LUT max + 1).
        rng::sample_distinct_excluding_into(
            rng, static_cast<std::size_t>(fanout),
            static_cast<std::size_t>(n), self, targets_);
      } else {
        // Rejection sampling of a distinct target set: draw in [0, n-1),
        // remap across `self`, linear-scan the few picks so far for dups.
        while (targets_.size() < fanout) {
          auto candidate =
              static_cast<std::uint32_t>(rng.next_below(n_minus_1));
          if (candidate >= self) ++candidate;
          if (std::find(targets_.begin(), targets_.end(), candidate) ==
              targets_.end()) {
            targets_.push_back(candidate);
          }
        }
      }
      result.messages_sent += targets_.size();
      for (const std::uint32_t t : targets_) {
        if (loss > 0.0 && rng.bernoulli(loss)) {  // lost in flight
          ++result.losses;
          continue;
        }
        if (!alive_[t]) {  // fail-stop: dropped at a crashed member
          ++result.dead_receipts;
          continue;
        }
        if (seen_[t]) {
          ++result.duplicate_receipts;
          continue;
        }
        seen_.set(t);
        next_.push_back(t);
      }
    }
    informed += next_.size();
    if (probe != nullptr) {
      obs::RoundSample sample;
      sample.round = result.rounds;
      sample.frontier = frontier_.size();
      sample.sends = result.messages_sent - round_sent;
      sample.newly_informed = next_.size();
      sample.redundant = result.duplicate_receipts - round_dup;
      sample.losses = result.losses - round_loss;
      sample.dead_receipts = result.dead_receipts - round_dead;
      sample.informed = informed;
      probe->on_round(sample);
    }
    frontier_.swap(next_);
  }

  result.nonfailed_count = alive_.count();
  result.nonfailed_received = core::Bitvec::count_and(alive_, seen_);
  result.reliability = static_cast<double>(result.nonfailed_received) /
                       static_cast<double>(result.nonfailed_count);
  result.success = result.nonfailed_received == result.nonfailed_count;
  if (probe != nullptr) {
    obs::RunSummary summary;
    summary.rounds = result.rounds;
    summary.sends = result.messages_sent;
    summary.redundant = result.duplicate_receipts;
    summary.losses = result.losses;
    summary.dead_receipts = result.dead_receipts;
    summary.informed_final = informed;
    summary.nonfailed_final = result.nonfailed_count;
    probe->on_run(summary);
  }
  return result;
}

std::size_t FlatGossipEngine::workspace_bytes() const noexcept {
  // The CSR topology arrays are shared and owned by the caller, so they are
  // deliberately not counted here.
  return alive_.capacity_bytes() + seen_.capacity_bytes() +
         frontier_.capacity() * sizeof(std::uint32_t) +
         next_.capacity() * sizeof(std::uint32_t) +
         fanouts_.capacity() * sizeof(std::uint16_t) +
         targets_.capacity() * sizeof(std::uint32_t) +
         excluded_.capacity() * sizeof(std::uint32_t);
}

}  // namespace gossip::protocol
