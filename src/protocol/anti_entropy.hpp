#pragma once

/// \file anti_entropy.hpp
/// Anti-entropy gossip (Demers et al., the paper's reference [2]): round-
/// synchronous PUSH, PULL, and PUSH-PULL exchange. Complements the Fig. 1
/// one-shot protocol: anti-entropy trades extra rounds and messages for the
/// certainty that every connected member eventually converges — the classic
/// replicated-database setting the paper's introduction cites.
///
///   * push:      informed members send the update to f random peers;
///   * pull:      uninformed members ask f random peers and copy the update
///                if the peer has it;
///   * push-pull: both in the same round.
///
/// Crash semantics match Section 4.1: crashed members neither push, pull,
/// nor answer pulls.

#include <cstdint>
#include <vector>

#include "core/degree_distribution.hpp"
#include "membership/view.hpp"
#include "protocol/gossip_multicast.hpp"

namespace gossip::protocol {

enum class ExchangeMode {
  kPush,
  kPull,
  kPushPull,
};

struct AntiEntropyParams {
  std::uint32_t num_nodes = 0;
  NodeId source = 0;
  double nonfailed_ratio = 1.0;
  /// Peers contacted per member per round.
  core::DegreeDistributionPtr fanout;
  std::int64_t rounds = 0;
  ExchangeMode mode = ExchangeMode::kPushPull;
  membership::MembershipProviderPtr membership;  ///< Defaults to full view.
};

struct AntiEntropyResult {
  ExecutionResult execution;  ///< Same metrics as the other protocols.
  std::int64_t rounds_executed = 0;
  /// Fraction of non-failed members informed after each round (index 0 =
  /// before any round).
  std::vector<double> informed_per_round;
  /// Rounds until every non-failed member was informed; -1 if the budget
  /// ran out first.
  std::int64_t rounds_to_full_coverage = -1;
};

/// Runs one anti-entropy dissemination, drawing the alive mask internally.
[[nodiscard]] AntiEntropyResult run_anti_entropy(
    const AntiEntropyParams& params, rng::RngStream& rng);

/// Runs with a caller-fixed alive mask (source must be alive).
[[nodiscard]] AntiEntropyResult run_anti_entropy(const AntiEntropyParams& params,
                                                 const core::Bitvec& alive,
                                                 rng::RngStream& rng);

}  // namespace gossip::protocol
