#include "protocol/anti_entropy.hpp"

#include <stdexcept>

#include "membership/full_view.hpp"

namespace gossip::protocol {

namespace {

void validate(const AntiEntropyParams& params) {
  if (params.num_nodes < 2) {
    throw std::invalid_argument("anti-entropy requires >= 2 nodes");
  }
  if (params.source >= params.num_nodes) {
    throw std::out_of_range("anti-entropy source out of range");
  }
  if (!(params.nonfailed_ratio > 0.0 && params.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("anti-entropy requires q in (0, 1]");
  }
  if (params.fanout == nullptr) {
    throw std::invalid_argument("anti-entropy requires a fanout distribution");
  }
  if (params.rounds < 0) {
    throw std::invalid_argument("anti-entropy requires rounds >= 0");
  }
}

}  // namespace

AntiEntropyResult run_anti_entropy(const AntiEntropyParams& params,
                                   rng::RngStream& rng) {
  validate(params);
  const auto alive = draw_alive_mask(params.num_nodes, params.source,
                                     params.nonfailed_ratio, rng);
  return run_anti_entropy(params, alive, rng);
}

AntiEntropyResult run_anti_entropy(const AntiEntropyParams& params,
                                   const core::Bitvec& alive,
                                   rng::RngStream& rng) {
  validate(params);
  if (alive.size() != params.num_nodes) {
    throw std::invalid_argument("alive mask size must equal num_nodes");
  }
  if (!alive[params.source]) {
    throw std::invalid_argument("the source member must be alive");
  }
  const auto membership = params.membership
                              ? params.membership
                              : membership::full_membership(params.num_nodes);
  const bool do_push = params.mode != ExchangeMode::kPull;
  const bool do_pull = params.mode != ExchangeMode::kPush;

  core::Bitvec informed(params.num_nodes);
  informed.set(params.source);
  const auto nonfailed_count = static_cast<std::uint32_t>(alive.count());
  std::uint32_t nonfailed_informed = 1;
  std::uint64_t messages = 0;
  std::uint64_t duplicates = 0;

  AntiEntropyResult result;
  result.informed_per_round.push_back(
      static_cast<double>(nonfailed_informed) /
      static_cast<double>(nonfailed_count));

  // Hoisted per-round state: the snapshot copy reuses its words buffer and
  // the peer scratch its capacity, so rounds allocate nothing new.
  core::Bitvec snapshot;
  std::vector<NodeId> peers;
  std::vector<membership::MembershipViewPtr> view_cache(params.num_nodes);
  for (std::int64_t round = 0; round < params.rounds; ++round) {
    // Round-synchronous semantics: exchanges act on the state at the start
    // of the round, so order within a round cannot matter.
    snapshot = informed;
    for (NodeId v = 0; v < params.num_nodes; ++v) {
      if (!alive[v]) continue;  // crashed members take no part
      const bool is_informed = snapshot[v];
      if (is_informed && !do_push) continue;
      if (!is_informed && !do_pull) continue;

      const std::int64_t fanout = params.fanout->sample(rng);
      if (fanout <= 0) continue;
      auto& view = view_cache[v];
      if (view == nullptr) view = membership->view_for(v);
      view->select_targets_into(static_cast<std::size_t>(fanout), rng, peers);
      for (const NodeId peer : peers) {
        ++messages;  // the request/update message itself
        if (is_informed) {
          // PUSH: v offers the update to peer.
          if (!alive[peer]) continue;
          if (informed[peer]) {
            ++duplicates;
          } else {
            informed.set(peer);
            if (alive[peer]) ++nonfailed_informed;
          }
        } else {
          // PULL: v asks peer; a crashed or uninformed peer has nothing.
          if (!alive[peer] || !snapshot[peer]) continue;
          ++messages;  // the reply carrying the update
          if (!informed[v]) {
            informed.set(v);
            ++nonfailed_informed;
          } else {
            ++duplicates;  // simultaneous pulls in the same round
          }
        }
      }
    }
    result.rounds_executed = round + 1;
    result.informed_per_round.push_back(
        static_cast<double>(nonfailed_informed) /
        static_cast<double>(nonfailed_count));
    if (nonfailed_informed == nonfailed_count &&
        result.rounds_to_full_coverage < 0) {
      result.rounds_to_full_coverage = round + 1;
      break;  // converged; further rounds would only add duplicates
    }
  }

  ExecutionResult& exec = result.execution;
  exec.num_nodes = params.num_nodes;
  exec.alive = alive;
  exec.received = informed;
  exec.nonfailed_count = nonfailed_count;
  exec.nonfailed_received = nonfailed_informed;
  exec.reliability = static_cast<double>(nonfailed_informed) /
                     static_cast<double>(nonfailed_count);
  exec.success = nonfailed_informed == nonfailed_count;
  exec.messages_sent = messages;
  exec.duplicate_receipts = duplicates;
  exec.completion_time = static_cast<double>(result.rounds_executed);
  return result;
}

}  // namespace gossip::protocol
