#pragma once

/// \file gossip_multicast.hpp
/// The paper's general gossiping algorithm (Fig. 1) as a message-level
/// protocol on the simulated network:
///
///   Upon member i receiving message m for the FIRST time:
///     draw f_i ~ P;
///     select f_i members uniformly at random from i's membership view;
///     send m to them.
///   Duplicate receipts are discarded.
///
/// Crash failures follow Section 4.1: a member fails before receiving m, or
/// after receiving m but before forwarding it — "treated the same" by the
/// model because in both cases the member contributes no forwarding. Both
/// variants are implemented so tests can confirm the equivalence.

#include <cstdint>
#include <vector>

#include "core/bitvec.hpp"
#include "core/degree_distribution.hpp"
#include "membership/dynamics.hpp"
#include "membership/view.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "obs/probe.hpp"
#include "protocol/failure_schedule.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::protocol {

using NodeId = net::NodeId;

/// Which of the two Section 4.1 crash moments is simulated. The reliability
/// metric is identical by construction; message accounting differs.
enum class CrashCase {
  kBeforeReceive,            ///< Crashed members never process deliveries.
  kAfterReceiveBeforeForward ///< Crashed members record receipt, never forward.
};

struct GossipParams {
  std::uint32_t num_nodes = 0;
  NodeId source = 0;
  /// Non-failed member ratio q; each non-source member is alive i.i.d. with
  /// this probability. The source never fails (Section 3).
  double nonfailed_ratio = 1.0;
  /// Fanout distribution P (required).
  core::DegreeDistributionPtr fanout;
  /// Membership views; defaults to the idealized full view.
  membership::MembershipProviderPtr membership;
  /// Live membership (extension): when set, every execution builds its own
  /// evolving view table from this factory, per-round target selection
  /// reads that table as of the current virtual time, and liveness
  /// transitions drive the protocol's repair (crash -> leave with
  /// unsubscription repair, revival -> fresh join, lease expiry ->
  /// re-subscription). Mutually exclusive with `membership`.
  membership::MembershipDynamicsFactoryPtr dynamics;
  /// Message latency; defaults to Constant(1).
  net::LatencyModelPtr latency;
  /// Per-message loss probability (0 in the paper's model).
  double loss_probability = 0.0;
  CrashCase crash_case = CrashCase::kBeforeReceive;

  // ---- Dynamic failures (extension; the paper's crashes are static) ----
  /// Fraction of initially-alive, non-source members that crash DURING the
  /// dissemination, at a simulation time drawn from midrun_crash_time.
  /// Early crash times degenerate to static failures; late ones are
  /// harmless because the member has already forwarded.
  double midrun_crash_fraction = 0.0;
  /// Crash-time distribution (reuses the latency-model interface as a
  /// non-negative time sampler); defaults to Uniform[0, 10] hops.
  net::LatencyModelPtr midrun_crash_time;

  /// Optional declarative fault injection (churn traces, targeted kills,
  /// structured loss); applied once before dissemination on a dedicated RNG
  /// substream, so enabling it never perturbs the draws above. Composes
  /// with the static and midrun fields.
  FailureSchedulePtr failure;
};

struct ExecutionResult {
  std::uint32_t num_nodes = 0;
  std::uint32_t nonfailed_count = 0;     ///< Alive members (incl. source).
  std::uint32_t nonfailed_received = 0;  ///< Alive members that got m.
  /// R for this execution: nonfailed_received / nonfailed_count.
  double reliability = 0.0;
  /// Success of gossiping: every non-failed member received m.
  bool success = false;
  std::uint64_t messages_sent = 0;
  std::uint64_t duplicate_receipts = 0;
  /// Sim time of the last message receipt (not the last event: scheduled
  /// failure actions after dissemination ends do not inflate this).
  double completion_time = 0.0;
  /// Per-node receipt flags, packed 64 per word (core::Bitvec) so that
  /// million-node results stay compact; operator[] reads as bool.
  core::Bitvec received;
  /// Per-node alive flags at the END of the execution (members that crashed
  /// mid-run count as failed and are excluded from the reliability).
  core::Bitvec alive;
  /// Members that crashed during the run (0 unless midrun crashes enabled).
  std::uint32_t midrun_crashes = 0;
};

// ---- Multi-message workloads (extension) -------------------------------
//
// The paper analyzes one multicast in isolation; a workload runs N
// overlapping multicasts through ONE simulator session, so every message
// shares the same churn trace, the same failure schedule, and the same
// evolving membership — the co-simulation regime where per-message
// reliability depends on where the message lands inside the churn.

struct WorkloadParams {
  /// Number of multicasts; message j (0-based) is injected at j * spacing.
  std::uint32_t num_messages = 1;
  /// Virtual-time gap between consecutive injections (>= 0).
  double spacing = 1.0;
  /// false: every message originates at params.source (which never fails).
  /// true: sources round-robin across the group; a message whose source is
  /// dead at injection time is lost outright — a real cost of churn.
  bool spread_sources = false;
};

/// Per-message outcome of a workload execution. Delivery is counted over
/// the members alive at the END of the execution, matching the paper's
/// non-failed-member reliability metric.
struct MessageStats {
  std::uint32_t id = 0;        ///< 1-based message id.
  NodeId source = 0;
  double inject_time = 0.0;
  bool injected = false;       ///< Source was alive at inject time.
  std::uint32_t delivered = 0; ///< Alive-at-end members that received it.
  std::uint32_t alive_count = 0;
  double reliability = 0.0;    ///< delivered / alive_count.
  bool success = false;        ///< Every alive-at-end member received it.
  double completion_time = 0.0;  ///< Absolute time of the last receipt.
  /// Mean first-receipt latency (receipt - inject) over the delivered
  /// alive-at-end members; 0 when none were delivered.
  double mean_latency = 0.0;
};

struct WorkloadResult {
  std::uint32_t num_nodes = 0;
  std::uint32_t nonfailed_count = 0;  ///< Members alive at the end.
  std::vector<MessageStats> messages;
  double mean_reliability = 0.0;  ///< Mean of per-message reliabilities.
  bool all_success = false;
  std::uint64_t messages_sent = 0;
  std::uint64_t duplicate_receipts = 0;
  std::uint32_t midrun_crashes = 0;
  double completion_time = 0.0;  ///< Last receipt across all messages.
};

/// Runs one workload execution. With num_messages == 1, fixed sources, and
/// no dynamics this consumes exactly the randomness of run_gossip_once —
/// the single-message protocol is the degenerate workload.
///
/// `probe` (obs/probe.hpp) observes the run: per-round samples indexed by
/// message hop count (round 0 = the injections; membership events bucketed
/// by floor(virtual time), which coincides under the default unit latency)
/// plus a whole-run summary. The probe never consumes randomness — a
/// traced run makes bit-identical draws to an untraced one.
[[nodiscard]] WorkloadResult run_gossip_workload(
    const GossipParams& params, const WorkloadParams& workload,
    rng::RngStream& rng, obs::Probe* probe = nullptr);

/// Runs one execution, drawing the alive mask from params.nonfailed_ratio.
[[nodiscard]] ExecutionResult run_gossip_once(const GossipParams& params,
                                              rng::RngStream& rng,
                                              obs::Probe* probe = nullptr);

/// Runs one execution with a caller-fixed alive mask (source must be alive;
/// mask size must equal num_nodes). Used by the repeated-execution
/// experiments where crashes persist across executions.
[[nodiscard]] ExecutionResult run_gossip_once(const GossipParams& params,
                                              const core::Bitvec& alive,
                                              rng::RngStream& rng,
                                              obs::Probe* probe = nullptr);

/// Draws an i.i.d. alive mask with the source forced alive.
[[nodiscard]] core::Bitvec draw_alive_mask(std::uint32_t num_nodes,
                                           NodeId source,
                                           double nonfailed_ratio,
                                           rng::RngStream& rng);

}  // namespace gossip::protocol
