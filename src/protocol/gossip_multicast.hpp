#pragma once

/// \file gossip_multicast.hpp
/// The paper's general gossiping algorithm (Fig. 1) as a message-level
/// protocol on the simulated network:
///
///   Upon member i receiving message m for the FIRST time:
///     draw f_i ~ P;
///     select f_i members uniformly at random from i's membership view;
///     send m to them.
///   Duplicate receipts are discarded.
///
/// Crash failures follow Section 4.1: a member fails before receiving m, or
/// after receiving m but before forwarding it — "treated the same" by the
/// model because in both cases the member contributes no forwarding. Both
/// variants are implemented so tests can confirm the equivalence.

#include <cstdint>
#include <vector>

#include "core/degree_distribution.hpp"
#include "membership/view.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "protocol/failure_schedule.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::protocol {

using NodeId = net::NodeId;

/// Which of the two Section 4.1 crash moments is simulated. The reliability
/// metric is identical by construction; message accounting differs.
enum class CrashCase {
  kBeforeReceive,            ///< Crashed members never process deliveries.
  kAfterReceiveBeforeForward ///< Crashed members record receipt, never forward.
};

struct GossipParams {
  std::uint32_t num_nodes = 0;
  NodeId source = 0;
  /// Non-failed member ratio q; each non-source member is alive i.i.d. with
  /// this probability. The source never fails (Section 3).
  double nonfailed_ratio = 1.0;
  /// Fanout distribution P (required).
  core::DegreeDistributionPtr fanout;
  /// Membership views; defaults to the idealized full view.
  membership::MembershipProviderPtr membership;
  /// Message latency; defaults to Constant(1).
  net::LatencyModelPtr latency;
  /// Per-message loss probability (0 in the paper's model).
  double loss_probability = 0.0;
  CrashCase crash_case = CrashCase::kBeforeReceive;

  // ---- Dynamic failures (extension; the paper's crashes are static) ----
  /// Fraction of initially-alive, non-source members that crash DURING the
  /// dissemination, at a simulation time drawn from midrun_crash_time.
  /// Early crash times degenerate to static failures; late ones are
  /// harmless because the member has already forwarded.
  double midrun_crash_fraction = 0.0;
  /// Crash-time distribution (reuses the latency-model interface as a
  /// non-negative time sampler); defaults to Uniform[0, 10] hops.
  net::LatencyModelPtr midrun_crash_time;

  /// Optional declarative fault injection (churn traces, targeted kills,
  /// structured loss); applied once before dissemination on a dedicated RNG
  /// substream, so enabling it never perturbs the draws above. Composes
  /// with the static and midrun fields.
  FailureSchedulePtr failure;
};

struct ExecutionResult {
  std::uint32_t num_nodes = 0;
  std::uint32_t nonfailed_count = 0;     ///< Alive members (incl. source).
  std::uint32_t nonfailed_received = 0;  ///< Alive members that got m.
  /// R for this execution: nonfailed_received / nonfailed_count.
  double reliability = 0.0;
  /// Success of gossiping: every non-failed member received m.
  bool success = false;
  std::uint64_t messages_sent = 0;
  std::uint64_t duplicate_receipts = 0;
  /// Sim time of the last message receipt (not the last event: scheduled
  /// failure actions after dissemination ends do not inflate this).
  double completion_time = 0.0;
  std::vector<std::uint8_t> received;    ///< Per-node receipt flag.
  /// Per-node alive flag at the END of the execution (members that crashed
  /// mid-run count as failed and are excluded from the reliability).
  std::vector<std::uint8_t> alive;
  /// Members that crashed during the run (0 unless midrun crashes enabled).
  std::uint32_t midrun_crashes = 0;
};

/// Runs one execution, drawing the alive mask from params.nonfailed_ratio.
[[nodiscard]] ExecutionResult run_gossip_once(const GossipParams& params,
                                              rng::RngStream& rng);

/// Runs one execution with a caller-fixed alive mask (source must be alive;
/// mask size must equal num_nodes). Used by the repeated-execution
/// experiments where crashes persist across executions.
[[nodiscard]] ExecutionResult run_gossip_once(
    const GossipParams& params, const std::vector<std::uint8_t>& alive,
    rng::RngStream& rng);

/// Draws an i.i.d. alive mask with the source forced alive.
[[nodiscard]] std::vector<std::uint8_t> draw_alive_mask(
    std::uint32_t num_nodes, NodeId source, double nonfailed_ratio,
    rng::RngStream& rng);

}  // namespace gossip::protocol
