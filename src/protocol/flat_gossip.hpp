#pragma once

/// \file flat_gossip.hpp
/// The million-node hot path: a struct-of-arrays round engine for the
/// paper's forward-once gossip (Fig. 1) under static crash failures, the
/// full membership view, unit latency, and i.i.d. per-message loss — the
/// exact regime of the Fig. 4/5 reliability experiments. The message-level
/// DES in gossip_multicast.hpp stays as the reference implementation (it
/// supports every failure model, latency, and live-membership knob); this
/// engine trades that generality for raw speed:
///
///   * node state is three flat arrays — packed alive/infected bitsets
///     (core::Bitvec, 64 nodes per word) and a frontier of NodeIds —
///     instead of per-node handler objects on a simulated network;
///   * fanout draws go through the 8.8 fixed-point LUT sampler
///     (rng::Lut88Sampler), batched per frontier generation, so a draw is
///     a table walk instead of a virtual call into the distribution;
///   * target selection is rejection sampling into a reused scratch buffer
///     — no per-message vector, no hash set; with a static topology
///     attached (FlatGossipParams::topology) the same scheme samples
///     neighbor INDICES from the CSR arrays, switching to complement
///     sampling when the fanout approaches the degree;
///   * the engine owns all buffers and reuses them across replications:
///     after the first run, the steady-state loop performs zero heap
///     allocations (pinned by tests/protocol/flat_gossip_test.cpp).
///
/// Statistical equivalence with the reference path on the pinned Fig. 4/5
/// anchors is asserted in tests/integration/flat_equivalence_test.cpp;
/// the engine's own runs are deterministic bit for bit.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/bitvec.hpp"
#include "core/degree_distribution.hpp"
#include "membership/topology_view.hpp"
#include "obs/probe.hpp"
#include "rng/lut_sampler.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::protocol {

/// Ceiling on the group size every engine in this repo supports. NodeIds
/// are 32-bit; all index arithmetic that can exceed 32 bits (bit offsets,
/// msg*n flattening, n*fanout message counts) is done in 64-bit — pinned
/// by static_asserts here and the max-n test.
inline constexpr std::uint64_t kMaxSupportedNodes = std::uint64_t{1} << 31;
static_assert(sizeof(std::size_t) >= 8,
              "gossip hot paths index msg*n and n*fanout products; a 64-bit "
              "size_t is required");
static_assert(kMaxSupportedNodes - 1 <= 0xffffffffULL,
              "NodeId is 32-bit; the supported max n must fit");

struct FlatGossipParams {
  std::uint64_t num_nodes = 0;
  std::uint64_t source = 0;
  /// Non-failed member ratio q; each non-source member is alive i.i.d.
  double nonfailed_ratio = 1.0;
  /// Per-message loss probability (0 in the paper's model).
  double loss_probability = 0.0;
  /// Fanout distribution P (required); support must fit the LUT (0..255).
  core::DegreeDistributionPtr fanout;
  /// Tail mass the LUT construction may drop from unbounded distributions.
  double lut_tail_epsilon = 1e-9;
  /// Optional static overlay (CSR neighbor lists): when set, every sender
  /// draws its targets uniformly from ITS NEIGHBOR SET instead of the whole
  /// group (fanout clamps to the degree). Null = the paper's uniform view.
  /// Shared, immutable, and consumed index-only, so the steady-state loop
  /// stays allocation-free.
  membership::CsrAdjacencyPtr topology;
};

struct FlatGossipResult {
  std::uint64_t num_nodes = 0;
  std::uint64_t nonfailed_count = 0;     ///< Alive members (incl. source).
  std::uint64_t nonfailed_received = 0;  ///< Alive members that got m.
  double reliability = 0.0;  ///< nonfailed_received / nonfailed_count.
  bool success = false;      ///< Every non-failed member received m.
  std::uint64_t messages_sent = 0;
  std::uint64_t duplicate_receipts = 0;
  std::uint64_t losses = 0;         ///< Messages dropped by the loss model.
  std::uint64_t dead_receipts = 0;  ///< Deliveries to crashed members.
  std::uint64_t rounds = 0;  ///< Frontier generations until extinction.
};

class FlatGossipEngine {
 public:
  /// Validates, builds the fanout LUT, and allocates the workspace once.
  explicit FlatGossipEngine(FlatGossipParams params);

  [[nodiscard]] const FlatGossipParams& params() const noexcept {
    return params_;
  }

  /// One execution. Reuses the engine's buffers: no allocation after the
  /// first call. Deterministic for a fixed stream state, and makes the
  /// exact same draws whether `probe` is null or not — the probe is pure
  /// observation (obs/probe.hpp), tested per round against the engine's own
  /// counters. The null-probe path costs one pointer test per round, kept
  /// within 2% of the uninstrumented baseline by bench_compare.py.
  FlatGossipResult run_once(rng::RngStream& rng,
                            obs::Probe* probe = nullptr);

  /// Bytes of workspace currently held (bitsets + frontiers + scratch) —
  /// the memory-ceiling smoke test at n = 10^6 pins this.
  [[nodiscard]] std::size_t workspace_bytes() const noexcept;

 private:
  void draw_alive(rng::RngStream& rng);

  FlatGossipParams params_;
  rng::Lut88Sampler fanout_lut_;
  core::Bitvec alive_;
  core::Bitvec seen_;
  std::vector<std::uint32_t> frontier_;
  std::vector<std::uint32_t> next_;
  std::vector<std::uint16_t> fanouts_;   ///< Batched LUT draws per round.
  std::vector<std::uint32_t> targets_;   ///< Per-sender scratch.
  std::vector<std::uint32_t> excluded_;  ///< Complement-sampling scratch
                                         ///< (topology mode only).
};

}  // namespace gossip::protocol
