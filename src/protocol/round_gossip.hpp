#pragma once

/// \file round_gossip.hpp
/// Round-based push gossip — the "traditional" protocol shape (pbcast-style)
/// used as a baseline against the paper's forward-once algorithm. Time is
/// divided into rounds; in each round, members that know m push it to
/// `fanout` uniformly chosen targets. Two variants:
///   * forward-once (infect-and-die): a member pushes only in the round
///     after it first received m — the round-synchronized analog of Fig. 1;
///   * forward-always (infect-forever): every informed member pushes every
///     round until the round budget is exhausted.

#include <cstdint>
#include <vector>

#include "core/degree_distribution.hpp"
#include "membership/view.hpp"
#include "protocol/gossip_multicast.hpp"

namespace gossip::protocol {

enum class RoundGossipMode {
  kForwardOnce,    ///< Push only in the round after first receipt.
  kForwardAlways,  ///< Push every round while informed.
};

struct RoundGossipProtocolParams {
  std::uint32_t num_nodes = 0;
  NodeId source = 0;
  double nonfailed_ratio = 1.0;
  /// Per-round fanout distribution (fixed_fanout(k) recovers the classic
  /// protocol).
  core::DegreeDistributionPtr fanout;
  std::int64_t rounds = 0;
  RoundGossipMode mode = RoundGossipMode::kForwardOnce;
  membership::MembershipProviderPtr membership;  ///< Defaults to full view.
};

struct RoundGossipResult {
  ExecutionResult execution;       ///< Same metrics as the Fig. 1 protocol.
  std::int64_t rounds_executed = 0;
  /// Fraction of non-failed members informed after each round
  /// (index 0 = before any round, i.e. just the source).
  std::vector<double> informed_per_round;
};

/// Runs one round-based execution, drawing the alive mask internally.
[[nodiscard]] RoundGossipResult run_round_gossip(
    const RoundGossipProtocolParams& params, rng::RngStream& rng);

/// Runs with a caller-fixed alive mask (source must be alive).
[[nodiscard]] RoundGossipResult run_round_gossip(
    const RoundGossipProtocolParams& params, const core::Bitvec& alive,
    rng::RngStream& rng);

}  // namespace gossip::protocol
