#include "sim/simulator.hpp"

#include <stdexcept>

namespace gossip::sim {

EventId Simulator::schedule_at(SimTime t, EventCallback callback) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at in the past");
  }
  return queue_.push(t, std::move(callback));
}

EventId Simulator::schedule_after(SimTime delay, EventCallback callback) {
  if (!(delay >= 0.0)) {
    throw std::invalid_argument("Simulator::schedule_after negative delay");
  }
  return queue_.push(now_ + delay, std::move(callback));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [time, callback] = queue_.pop();
  now_ = time;
  ++executed_;
  callback();
  return true;
}

std::size_t Simulator::run() {
  std::size_t count = 0;
  while (step()) ++count;
  return count;
}

std::size_t Simulator::run_until(SimTime t_end) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= t_end) {
    step();
    ++count;
  }
  if (now_ < t_end) now_ = t_end;
  return count;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0.0;
  executed_ = 0;
}

}  // namespace gossip::sim
