#include "sim/event_queue.hpp"

#include <stdexcept>

namespace gossip::sim {

EventId EventQueue::push(SimTime time, EventCallback callback) {
  const EventId id = next_id_++;
  heap_.push({time, id});
  callbacks_.emplace(id, std::move(callback));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty() &&
         callbacks_.find(heap_.top().id) == callbacks_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  drop_cancelled();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time on empty queue");
  }
  return heap_.top().time;
}

std::pair<SimTime, EventCallback> EventQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::pop on empty queue");
  }
  const HeapEntry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  EventCallback cb = std::move(it->second);
  callbacks_.erase(it);
  --live_;
  return {entry.time, std::move(cb)};
}

void EventQueue::clear() {
  heap_ = {};
  callbacks_.clear();
  live_ = 0;
}

}  // namespace gossip::sim
