#pragma once

/// \file event_queue.hpp
/// Pending-event set for the discrete-event simulator: a binary min-heap
/// keyed by (time, sequence). The sequence number makes ordering of
/// simultaneous events deterministic (FIFO in scheduling order), which is
/// what guarantees replay-identical runs for a fixed seed.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace gossip::sim {

using SimTime = double;
using EventId = std::uint64_t;
using EventCallback = std::function<void()>;

class EventQueue {
 public:
  /// Inserts an event; returns its id (monotonically increasing, which
  /// doubles as the tie-break sequence).
  EventId push(SimTime time, EventCallback callback);

  /// Removes a pending event; returns false if it already ran or was
  /// cancelled. O(1) amortized (lazy deletion).
  bool cancel(EventId id);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Time of the earliest live event. Queue must be non-empty.
  [[nodiscard]] SimTime next_time();

  /// Pops and returns the earliest live event's (time, callback).
  /// Queue must be non-empty.
  std::pair<SimTime, EventCallback> pop();

  void clear();

 private:
  struct HeapEntry {
    SimTime time;
    EventId id;
    bool operator>(const HeapEntry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  void drop_cancelled();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<EventId, EventCallback> callbacks_;
  EventId next_id_ = 0;
  std::size_t live_ = 0;
};

}  // namespace gossip::sim
