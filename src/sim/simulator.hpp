#pragma once

/// \file simulator.hpp
/// Discrete-event simulator: a virtual clock plus the pending-event set.
/// The MATLAB simulation the paper used advanced the whole group in
/// lockstep; this kernel instead delivers each gossip message as its own
/// timestamped event, so latency models and mid-flight crashes compose
/// naturally while seeded runs stay bit-for-bit reproducible.

#include <cstdint>

#include "sim/event_queue.hpp"

namespace gossip::sim {

class Simulator {
 public:
  /// Current virtual time; starts at 0.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `callback` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, EventCallback callback);

  /// Schedules `callback` after `delay` (must be >= 0).
  EventId schedule_after(SimTime delay, EventCallback callback);

  /// Cancels a pending event; false if it already ran or was cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event set is empty; returns events executed.
  std::size_t run();

  /// Runs events with time <= t_end, then advances the clock to t_end
  /// (or further if already past); returns events executed.
  std::size_t run_until(SimTime t_end);

  /// Executes exactly one event if any is pending; returns whether one ran.
  bool step();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Clears pending events and resets the clock to 0.
  void reset();

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace gossip::sim
