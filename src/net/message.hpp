#pragma once

/// \file message.hpp
/// The unit of communication. Gossip payloads in this system are opaque
/// identifiers: the protocols only need to recognize "the same message m
/// again" (paper Fig. 1 discards duplicates), so a 64-bit id plus the
/// multicast origin suffices and keeps the hot path allocation-free.

#include <cstdint>

namespace gossip::net {

using NodeId = std::uint32_t;

struct Message {
  std::uint64_t id = 0;    ///< Multicast message identity (dedup key).
  NodeId origin = 0;       ///< The source member that initiated gossiping.
  std::uint32_t hops = 0;  ///< Forwarding depth from the origin (0 at source).

  [[nodiscard]] bool operator==(const Message&) const = default;
};

}  // namespace gossip::net
