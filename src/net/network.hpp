#pragma once

/// \file network.hpp
/// Simulated message-passing network over the DES kernel. Point-to-point
/// sends acquire a sampled latency and an optional Bernoulli loss; delivery
/// invokes the destination's handler unless the destination is down at
/// delivery time (fail-stop semantics, Section 3 of the paper).

#include <cstdint>
#include <functional>
#include <vector>

#include "net/latency.hpp"
#include "net/message.hpp"
#include "rng/rng_stream.hpp"
#include "sim/simulator.hpp"

namespace gossip::net {

/// Receives message deliveries. Implemented by protocol node logic.
class NodeHandler {
 public:
  virtual ~NodeHandler() = default;
  virtual void on_message(NodeId from, const Message& message) = 0;
};

struct NetworkParams {
  LatencyModelPtr latency;          ///< Defaults to Constant(1).
  double loss_probability = 0.0;    ///< Per-message drop probability.
};

/// Per-send loss decision: drop the message from -> to at virtual time
/// `now`? Installed by failure schedules that need structured loss (per-link
/// bursts, time-varying partitions) beyond the i.i.d. loss_probability. The
/// filter may consume randomness from the network's own stream, keeping
/// protocol-level draws untouched.
using LossFilter =
    std::function<bool(NodeId from, NodeId to, double now,
                       rng::RngStream& rng)>;

struct NetworkCounters {
  std::uint64_t sent = 0;        ///< send() calls accepted.
  std::uint64_t delivered = 0;   ///< Handler invocations.
  std::uint64_t lost = 0;        ///< Dropped by the loss model.
  std::uint64_t to_down_node = 0;  ///< Arrived at a crashed destination.
  std::uint64_t from_down_node = 0;  ///< Discarded: sender already crashed.
};

/// Why a message never reached its handler. Mirrors the counters above.
enum class DropReason {
  kLoss,             ///< Loss model (i.i.d. probability or loss filter).
  kDestinationDown,  ///< Destination crashed before delivery.
  kSenderDown,       ///< Sender crashed before the send (send ignored).
};

/// Per-drop observation hook for telemetry (obs::Probe plumbing): invoked
/// only when a message is dropped, never on the delivery fast path, and
/// handed no RNG — observers cannot perturb the simulation.
using DropObserver = std::function<void(NodeId from, NodeId to,
                                        const Message& message,
                                        DropReason reason, double now)>;

class Network {
 public:
  /// The network borrows the simulator and owns a dedicated RNG stream for
  /// latency/loss draws so protocol-level randomness stays decoupled.
  Network(sim::Simulator& simulator, NetworkParams params,
          rng::RngStream rng);

  /// Registers a handler; returns the node's id (dense, starting at 0).
  NodeId add_node(NodeHandler& handler);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(handlers_.size());
  }

  /// Sends `message` from -> to. If the sender is down the send is ignored
  /// (a crashed member cannot gossip); loss and latency are then applied;
  /// if the destination is down at delivery time the message is dropped.
  void send(NodeId from, NodeId to, const Message& message);

  /// Marks a node crashed (down = true) or recovered. Crashing does not
  /// cancel in-flight messages to the node; they are dropped on delivery.
  void set_down(NodeId node, bool down);

  /// Installs (or clears, with nullptr) a structured loss filter, applied
  /// after the i.i.d. loss_probability draw.
  void set_loss_filter(LossFilter filter) { loss_filter_ = std::move(filter); }

  /// Installs (or clears, with nullptr) a drop observer. Purely
  /// observational: the counters advance identically with or without one.
  void set_drop_observer(DropObserver observer) {
    drop_observer_ = std::move(observer);
  }

  [[nodiscard]] bool is_down(NodeId node) const { return down_.at(node) != 0; }

  [[nodiscard]] const NetworkCounters& counters() const noexcept {
    return counters_;
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return simulator_; }

 private:
  sim::Simulator& simulator_;
  NetworkParams params_;
  rng::RngStream rng_;
  std::vector<NodeHandler*> handlers_;
  std::vector<std::uint8_t> down_;
  LossFilter loss_filter_;
  DropObserver drop_observer_;
  NetworkCounters counters_;
};

}  // namespace gossip::net
