#include "net/latency.hpp"

#include <sstream>
#include <stdexcept>

#include "rng/distributions.hpp"

namespace gossip::net {

namespace {

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(double delay) : delay_(delay) {
    if (!(delay >= 0.0)) {
      throw std::invalid_argument("constant_latency requires delay >= 0");
    }
  }
  [[nodiscard]] std::string name() const override {
    return "Constant(" + format_double(delay_) + ")";
  }
  [[nodiscard]] double sample(rng::RngStream&) const override {
    return delay_;
  }

 private:
  double delay_;
};

class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(double lo, double hi) : lo_(lo), hi_(hi) {
    if (!(lo >= 0.0 && lo <= hi)) {
      throw std::invalid_argument("uniform_latency requires 0 <= lo <= hi");
    }
  }
  [[nodiscard]] std::string name() const override {
    return "Uniform[" + format_double(lo_) + "," + format_double(hi_) + "]";
  }
  [[nodiscard]] double sample(rng::RngStream& rng) const override {
    return lo_ + (hi_ - lo_) * rng.next_double();
  }

 private:
  double lo_;
  double hi_;
};

class ExponentialLatency final : public LatencyModel {
 public:
  explicit ExponentialLatency(double mean) : rate_(1.0 / mean) {
    if (!(mean > 0.0)) {
      throw std::invalid_argument("exponential_latency requires mean > 0");
    }
  }
  [[nodiscard]] std::string name() const override {
    return "Exponential(mean=" + format_double(1.0 / rate_) + ")";
  }
  [[nodiscard]] double sample(rng::RngStream& rng) const override {
    return rng::sample_exponential(rng, rate_);
  }

 private:
  double rate_;
};

class LognormalLatency final : public LatencyModel {
 public:
  LognormalLatency(double mu, double sigma) : mu_(mu), sigma_(sigma) {
    if (!(sigma > 0.0)) {
      throw std::invalid_argument("lognormal_latency requires sigma > 0");
    }
  }
  [[nodiscard]] std::string name() const override {
    return "Lognormal(mu=" + format_double(mu_) +
           ",sigma=" + format_double(sigma_) + ")";
  }
  [[nodiscard]] double sample(rng::RngStream& rng) const override {
    return rng::sample_lognormal(rng, mu_, sigma_);
  }

 private:
  double mu_;
  double sigma_;
};

}  // namespace

LatencyModelPtr constant_latency(double delay) {
  return std::make_shared<ConstantLatency>(delay);
}

LatencyModelPtr uniform_latency(double lo, double hi) {
  return std::make_shared<UniformLatency>(lo, hi);
}

LatencyModelPtr exponential_latency(double mean) {
  return std::make_shared<ExponentialLatency>(mean);
}

LatencyModelPtr lognormal_latency(double mu, double sigma) {
  return std::make_shared<LognormalLatency>(mu, sigma);
}

}  // namespace gossip::net
