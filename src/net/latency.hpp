#pragma once

/// \file latency.hpp
/// Message latency models for the simulated network. The paper's MATLAB
/// simulation was effectively zero-latency/synchronous; these models let the
/// DES reproduce that (Constant 0/1) and probe asynchrony beyond it.

#include <memory>
#include <string>

#include "rng/rng_stream.hpp"

namespace gossip::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Draws one message delay (>= 0).
  [[nodiscard]] virtual double sample(rng::RngStream& rng) const = 0;
};

using LatencyModelPtr = std::shared_ptr<const LatencyModel>;

/// Every message takes exactly `delay` time units (>= 0).
[[nodiscard]] LatencyModelPtr constant_latency(double delay);

/// Uniform delay on [lo, hi], 0 <= lo <= hi.
[[nodiscard]] LatencyModelPtr uniform_latency(double lo, double hi);

/// Exponential delay with the given mean (> 0).
[[nodiscard]] LatencyModelPtr exponential_latency(double mean);

/// Lognormal delay with log-space parameters mu, sigma (> 0) — the classic
/// heavy-tailed WAN latency shape.
[[nodiscard]] LatencyModelPtr lognormal_latency(double mu, double sigma);

}  // namespace gossip::net
