#include "net/network.hpp"

#include <stdexcept>

namespace gossip::net {

Network::Network(sim::Simulator& simulator, NetworkParams params,
                 rng::RngStream rng)
    : simulator_(simulator), params_(std::move(params)), rng_(rng) {
  if (params_.latency == nullptr) {
    params_.latency = constant_latency(1.0);
  }
  if (!(params_.loss_probability >= 0.0 && params_.loss_probability <= 1.0)) {
    throw std::invalid_argument("Network loss_probability must be in [0, 1]");
  }
}

NodeId Network::add_node(NodeHandler& handler) {
  handlers_.push_back(&handler);
  down_.push_back(0);
  return static_cast<NodeId>(handlers_.size() - 1);
}

void Network::send(NodeId from, NodeId to, const Message& message) {
  if (from >= handlers_.size() || to >= handlers_.size()) {
    throw std::out_of_range("Network::send endpoint out of range");
  }
  if (down_[from]) {
    ++counters_.from_down_node;
    if (drop_observer_) {
      drop_observer_(from, to, message, DropReason::kSenderDown,
                     simulator_.now());
    }
    return;  // fail-stop: a crashed member performs no sends
  }
  ++counters_.sent;
  if (params_.loss_probability > 0.0 &&
      rng_.bernoulli(params_.loss_probability)) {
    ++counters_.lost;
    if (drop_observer_) {
      drop_observer_(from, to, message, DropReason::kLoss, simulator_.now());
    }
    return;
  }
  if (loss_filter_ && loss_filter_(from, to, simulator_.now(), rng_)) {
    ++counters_.lost;
    if (drop_observer_) {
      drop_observer_(from, to, message, DropReason::kLoss, simulator_.now());
    }
    return;
  }
  const double delay = params_.latency->sample(rng_);
  simulator_.schedule_after(delay, [this, from, to, message] {
    if (down_[to]) {
      ++counters_.to_down_node;
      if (drop_observer_) {
        drop_observer_(from, to, message, DropReason::kDestinationDown,
                       simulator_.now());
      }
      return;
    }
    ++counters_.delivered;
    handlers_[to]->on_message(from, message);
  });
}

void Network::set_down(NodeId node, bool down) {
  if (node >= down_.size()) {
    throw std::out_of_range("Network::set_down node out of range");
  }
  down_[node] = down ? 1 : 0;
}

}  // namespace gossip::net
