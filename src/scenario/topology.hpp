#pragma once

/// \file topology.hpp
/// The `topology =` spec-key family: static overlay graphs restricting every
/// node's gossip targets to its neighbor set. `uniform` is the paper's model
/// (no overlay); `er`, `ba`, and `wan` build an Erdős–Rényi, Barabási–Albert,
/// or clustered-WAN graph from src/graph/generators and hand it to both
/// engines as a shared membership::CsrAdjacency. The overlay is sampled ONCE
/// per case from a dedicated substream of the case seed, so the flat and DES
/// backends — and every replication — gossip over the identical graph, which
/// is what makes the flat-vs-DES topology equivalence tests meaningful.

#include <cstdint>
#include <string>

#include "membership/topology_view.hpp"

namespace gossip::scenario {

/// Substream salt for the per-case overlay draw ("topo"); disjoint from the
/// membership salt ("memb") and the replication substreams.
inline constexpr std::uint64_t kTopologySalt = 0x746f706f;

enum class TopologyFamily {
  kUniform,  ///< Paper's uniform view — no overlay, engines run unchanged.
  kEr,       ///< Erdős–Rényi G(n, p); needs topology.p.
  kBa,       ///< Barabási–Albert scale-free; needs topology.m.
  kWan,      ///< Two-level clustered WAN; needs topology.clusters and
             ///< topology.bridge_edges, optional topology.p for intra extras.
};

[[nodiscard]] TopologyFamily parse_topology_family(const std::string& text);
[[nodiscard]] std::string topology_family_name(TopologyFamily family);

/// Parsed-and-range-checked topology knobs. Every knob present in a spec is
/// validated no matter the family, but only the owning family consumes it —
/// so one spec can sweep `topology` across families while keeping shared
/// knob lines (scenarios/er_vs_uniform.scn does exactly this).
struct TopologyConfig {
  TopologyFamily family = TopologyFamily::kUniform;
  bool has_p = false;
  double p = 0.0;  ///< er edge probability / wan intra-cluster extras.
  bool has_m = false;
  std::uint32_t m = 0;  ///< ba attachments per node.
  bool has_clusters = false;
  std::uint32_t clusters = 0;  ///< wan cluster count.
  bool has_bridge_edges = false;
  std::uint64_t bridge_edges = 0;  ///< wan inter-cluster edge budget.
};

/// Checks the family has every knob it requires (and that the knobs make
/// sense for `num_nodes`); throws std::invalid_argument otherwise. A no-op
/// for kUniform.
void validate_topology_config(const TopologyConfig& config,
                              std::uint32_t num_nodes);

/// Samples the overlay for a non-uniform family from
/// RngStream(seed).substream(kTopologySalt) and returns it as shared CSR
/// adjacency. Throws for kUniform — callers skip the build there.
[[nodiscard]] membership::CsrAdjacencyPtr build_topology_adjacency(
    const TopologyConfig& config, std::uint32_t num_nodes,
    std::uint64_t seed);

}  // namespace gossip::scenario
