#pragma once

/// \file manifest.hpp
/// Bridges the scenario engine to obs::RunManifest: folds a run's
/// CaseResults and wall-clock telemetry into the per-case records (headline
/// metric, replication-time histogram) and fingerprints the spec. The CLI
/// fills the invocation-level fields (tool, paths, thread count) and writes
/// the manifest next to its CSVs.

#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {

/// Hash of the spec's normalized text form ("fnv1a64:<16 hex>"): two specs
/// hash equal iff spec.format() round-trips identically, so a manifest
/// pins exactly which experiment produced its numbers.
[[nodiscard]] std::string spec_fingerprint(const ScenarioSpec& spec);

/// Builds the run manifest skeleton from results + telemetry: spec name and
/// hash, total wall time, peak RSS, trace mode (the widest mode any case
/// requested), and one CaseManifest per result (aligned with
/// telemetry.cases when sizes match; zero timings otherwise).
[[nodiscard]] obs::RunManifest build_run_manifest(
    const ScenarioSpec& spec, const std::vector<CaseResult>& results,
    const RunTelemetry& telemetry);

}  // namespace gossip::scenario
