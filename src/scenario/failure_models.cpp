#include "scenario/failure_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {

namespace {

using protocol::FailureContext;
using protocol::FailureSchedule;
using protocol::FailureSchedulePtr;

void require_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string(what) + " must be in [0, 1]");
  }
}

class ChurnSchedule final : public FailureSchedule {
 public:
  explicit ChurnSchedule(std::vector<ChurnEvent> events)
      : events_(std::move(events)) {
    if (events_.empty()) {
      throw std::invalid_argument("churn schedule needs >= 1 event");
    }
    for (const auto& event : events_) {
      if (!(event.time >= 0.0)) {
        throw std::invalid_argument("churn event time must be >= 0");
      }
      require_probability(event.fraction, "churn event fraction");
    }
  }

  [[nodiscard]] std::string name() const override {
    std::string out = "churn(";
    for (std::size_t i = 0; i < events_.size(); ++i) {
      if (i > 0) out += ',';
      switch (events_[i].kind) {
        case ChurnKind::kCrash: out += "crash@"; break;
        case ChurnKind::kJoin: out += "join@"; break;
        case ChurnKind::kLease: out += "lease@"; break;
      }
      out += format_compact(events_[i].time) + ":" +
             format_compact(events_[i].fraction);
    }
    return out + ")";
  }

  void apply(FailureContext& context, rng::RngStream& rng) const override {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const ChurnEvent event = events_[i];
      // Copies keep the hooks alive inside the scheduled action, and the
      // captured substream makes the event's draws independent of when the
      // simulator interleaves it with protocol events.
      auto child = rng.substream(i);
      auto is_alive = context.is_alive;
      auto set_alive = context.set_alive;
      auto expire_lease = context.expire_lease;
      const auto num_nodes = context.num_nodes;
      const auto source = context.source;
      context.schedule_action(
          event.time, [event, child, is_alive, set_alive, expire_lease,
                       num_nodes, source]() mutable {
            for (net::NodeId v = 0; v < num_nodes; ++v) {
              if (v == source) continue;
              if (event.kind == ChurnKind::kLease) {
                // Lease candidates are the live members; the hook is a
                // no-op on static-view executions, but the draw happens
                // either way so static and live runs see the same trace.
                if (is_alive(v) && child.bernoulli(event.fraction) &&
                    expire_lease) {
                  expire_lease(v);
                }
                continue;
              }
              const bool join = event.kind == ChurnKind::kJoin;
              if (is_alive(v) != join && child.bernoulli(event.fraction)) {
                set_alive(v, join);
              }
            }
          });
    }
  }

 private:
  std::vector<ChurnEvent> events_;
};

class TargetedKillSchedule final : public FailureSchedule {
 public:
  TargetedKillSchedule(double fraction, TargetedMode mode)
      : fraction_(fraction), mode_(mode) {
    require_probability(fraction, "targeted kill fraction");
  }

  [[nodiscard]] std::string name() const override {
    return "targeted(" + format_compact(fraction_) +
           (mode_ == TargetedMode::kHubs ? ",hubs)" : ",leaves)");
  }

  void apply(FailureContext& context, rng::RngStream& rng) const override {
    if (context.fanout == nullptr) {
      throw std::invalid_argument(
          "targeted kill schedule needs the execution's fanout distribution");
    }
    const auto n = context.num_nodes;
    std::vector<std::int64_t> degree(n);
    for (net::NodeId v = 0; v < n; ++v) {
      degree[v] = std::max<std::int64_t>(0, context.fanout->sample(rng));
      context.pin_fanout(v, degree[v]);
    }
    std::vector<net::NodeId> order;
    order.reserve(n - 1);
    for (net::NodeId v = 0; v < n; ++v) {
      if (v != context.source) order.push_back(v);
    }
    const bool hubs = mode_ == TargetedMode::kHubs;
    std::sort(order.begin(), order.end(),
              [&](net::NodeId a, net::NodeId b) {
                if (degree[a] != degree[b]) {
                  return hubs ? degree[a] > degree[b] : degree[a] < degree[b];
                }
                return a < b;
              });
    const auto kills = static_cast<std::size_t>(
        std::llround(fraction_ * static_cast<double>(order.size())));
    for (std::size_t i = 0; i < kills && i < order.size(); ++i) {
      context.set_alive(order[i], false);
    }
  }

 private:
  double fraction_;
  TargetedMode mode_;
};

class HottestForwarderKillSchedule final : public FailureSchedule {
 public:
  HottestForwarderKillSchedule(double fraction, double at)
      : fraction_(fraction), at_(at) {
    require_probability(fraction, "hottest-forwarder kill fraction");
    if (!(at >= 0.0)) {
      throw std::invalid_argument(
          "hottest-forwarder kill time must be >= 0");
    }
  }

  [[nodiscard]] std::string name() const override {
    return "kill_hottest_forwarder(" + format_compact(fraction_) + "," +
           format_compact(at_) + ")";
  }

  void apply(FailureContext& context, rng::RngStream& rng) const override {
    (void)rng;  // fully determined by the observed forwarding counts
    if (!context.forwards_sent) {
      throw std::invalid_argument(
          "kill_hottest_forwarder needs the execution's forwarding counts");
    }
    auto is_alive = context.is_alive;
    auto set_alive = context.set_alive;
    auto forwards_sent = context.forwards_sent;
    const auto num_nodes = context.num_nodes;
    const auto source = context.source;
    const double fraction = fraction_;
    context.schedule_action(at_, [is_alive, set_alive, forwards_sent,
                                  num_nodes, source, fraction] {
      std::vector<net::NodeId> candidates;
      candidates.reserve(num_nodes);
      for (net::NodeId v = 0; v < num_nodes; ++v) {
        if (v != source && is_alive(v)) candidates.push_back(v);
      }
      std::sort(candidates.begin(), candidates.end(),
                [&](net::NodeId a, net::NodeId b) {
                  const auto fa = forwards_sent(a);
                  const auto fb = forwards_sent(b);
                  if (fa != fb) return fa > fb;
                  return a < b;
                });
      const auto kills = static_cast<std::size_t>(
          std::llround(fraction * static_cast<double>(candidates.size())));
      for (std::size_t i = 0; i < kills && i < candidates.size(); ++i) {
        set_alive(candidates[i], false);
      }
    });
  }

 private:
  double fraction_;
  double at_;
};

class BurstyLossSchedule final : public FailureSchedule {
 public:
  explicit BurstyLossSchedule(BurstyLossParams params) : params_(params) {
    require_probability(params.burst_loss, "bursty loss burst probability");
    require_probability(params.link_fraction, "bursty loss link fraction");
    require_probability(params.base_loss, "bursty loss base probability");
    if (!(params.burst_start >= 0.0) || !(params.burst_length >= 0.0)) {
      throw std::invalid_argument(
          "bursty loss window must have start >= 0 and length >= 0");
    }
  }

  [[nodiscard]] std::string name() const override {
    return "bursty_loss(" + format_compact(params_.burst_loss) + "," +
           format_compact(params_.burst_start) + "," +
           format_compact(params_.burst_length) + "," +
           format_compact(params_.link_fraction) + "," +
           format_compact(params_.base_loss) + ")";
  }

  void apply(FailureContext& context, rng::RngStream& rng) const override {
    const BurstyLossParams p = params_;
    const std::uint64_t salt = rng();
    context.set_loss_filter([p, salt](net::NodeId from, net::NodeId to,
                                      double now, rng::RngStream& net_rng) {
      const std::uint64_t link =
          (static_cast<std::uint64_t>(from) << 32) | to;
      // Hash, not draw: whether a link is afflicted is a static property of
      // this execution, so it must not depend on message order.
      const double u = static_cast<double>(rng::mix_seed(salt, link) >> 11) *
                       0x1.0p-53;
      if (u >= p.link_fraction) return false;
      const bool in_burst =
          now >= p.burst_start && now < p.burst_start + p.burst_length;
      const double drop = in_burst ? p.burst_loss : p.base_loss;
      return drop > 0.0 && net_rng.bernoulli(drop);
    });
  }

 private:
  BurstyLossParams params_;
};

class RegionalOutageSchedule final : public FailureSchedule {
 public:
  RegionalOutageSchedule(std::uint32_t clusters, std::uint32_t outages,
                         double at)
      : clusters_(clusters), outages_(outages), at_(at) {
    if (clusters < 2) {
      throw std::invalid_argument("regional outage needs >= 2 clusters");
    }
    if (outages == 0 || outages >= clusters) {
      throw std::invalid_argument(
          "regional outage must kill between 1 and clusters - 1 clusters");
    }
    if (!(at >= 0.0)) {
      throw std::invalid_argument("regional outage time must be >= 0");
    }
  }

  [[nodiscard]] std::string name() const override {
    return "regional_outage(" + std::to_string(clusters_) + "," +
           std::to_string(outages_) + "," + format_compact(at_) + ")";
  }

  void apply(FailureContext& context, rng::RngStream& rng) const override {
    const std::uint32_t n = context.num_nodes;
    if (n < 2 * clusters_) {
      throw std::invalid_argument(
          "regional outage needs n >= 2 * clusters for the contiguous "
          "block partition");
    }
    // Which regions fail is drawn in apply() (on the schedule's dedicated
    // substream), never inside the scheduled action, so the choice cannot
    // depend on how the simulator interleaves events.
    const auto doomed = rng::sample_distinct(rng, outages_, clusters_);
    // Same contiguous near-equal partition as graph::wan_hierarchy: the
    // first n mod k clusters carry one extra node.
    const std::uint32_t base = n / clusters_;
    const std::uint32_t extra = n % clusters_;
    const auto block_start = [base, extra](std::uint32_t c) {
      return c * base + std::min(c, extra);
    };
    auto set_alive = context.set_alive;
    const auto kill = [doomed, block_start, set_alive]() {
      for (const std::uint32_t c : doomed) {
        const std::uint32_t lo = block_start(c);
        const std::uint32_t hi = block_start(c + 1);
        // set_alive ignores the source, so a doomed source cluster loses
        // everyone but the source itself.
        for (net::NodeId v = lo; v < hi; ++v) set_alive(v, false);
      }
    };
    if (at_ == 0.0) {
      kill();  // static outage: down before the first send
    } else {
      context.schedule_action(at_, kill);
    }
  }

 private:
  std::uint32_t clusters_;
  std::uint32_t outages_;
  double at_;
};

class CompositeSchedule final : public FailureSchedule {
 public:
  explicit CompositeSchedule(std::vector<FailureSchedulePtr> parts)
      : parts_(std::move(parts)) {
    for (const auto& part : parts_) {
      if (part == nullptr) {
        throw std::invalid_argument("composite schedule part is null");
      }
    }
  }

  [[nodiscard]] std::string name() const override {
    std::string out;
    for (const auto& part : parts_) {
      if (!out.empty()) out += '+';
      out += part->name();
    }
    return out.empty() ? "none" : out;
  }

  void apply(FailureContext& context, rng::RngStream& rng) const override {
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      auto child = rng.substream(i);
      parts_[i]->apply(context, child);
    }
  }

 private:
  std::vector<FailureSchedulePtr> parts_;
};

}  // namespace

protocol::FailureSchedulePtr churn_schedule(std::vector<ChurnEvent> events) {
  return std::make_shared<ChurnSchedule>(std::move(events));
}

protocol::FailureSchedulePtr targeted_kill_schedule(double fraction,
                                                    TargetedMode mode) {
  return std::make_shared<TargetedKillSchedule>(fraction, mode);
}

protocol::FailureSchedulePtr hottest_forwarder_kill_schedule(double fraction,
                                                             double at) {
  return std::make_shared<HottestForwarderKillSchedule>(fraction, at);
}

protocol::FailureSchedulePtr bursty_loss_schedule(BurstyLossParams params) {
  return std::make_shared<BurstyLossSchedule>(params);
}

protocol::FailureSchedulePtr regional_outage_schedule(std::uint32_t clusters,
                                                      std::uint32_t outages,
                                                      double at) {
  return std::make_shared<RegionalOutageSchedule>(clusters, outages, at);
}

protocol::FailureSchedulePtr composite_schedule(
    std::vector<protocol::FailureSchedulePtr> parts) {
  return std::make_shared<CompositeSchedule>(std::move(parts));
}

}  // namespace gossip::scenario
