#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <initializer_list>
#include <ostream>
#include <set>
#include <stdexcept>
#include <utility>

#include "experiment/component_mc.hpp"
#include "experiment/csv.hpp"
#include "experiment/meanfield.hpp"
#include "experiment/monte_carlo.hpp"
#include "experiment/table.hpp"
#include "obs/probe.hpp"
#include "parallel/parallel_for.hpp"
#include "membership/topology_view.hpp"
#include "protocol/gossip_multicast.hpp"
#include "scenario/registry.hpp"
#include "scenario/topology.hpp"

namespace gossip::scenario {

namespace {

/// Every key the engine understands; anything else in a spec is a typo and
/// throws rather than being silently ignored.
const std::set<std::string>& known_fields() {
  static const std::set<std::string> keys{
      "name",        "description",
      "n",           "source",
      "backend",     "engine",
      "fanout",
      "membership",  "membership.dynamics",
      "latency",     "loss",
      "failure",     "metric",
      "repetitions", "seed",
      "edge_keep",   "trace",
      "workload.messages", "workload.spacing",
      "workload.sources",
      "topology",          "topology.p",
      "topology.m",        "topology.clusters",
      "topology.bridge_edges",
  };
  return keys;
}

constexpr std::uint64_t kMembershipSalt = 0x6d656d62;  // "memb"

struct BuiltCase {
  ResolvedCase resolved;
  Backend backend = Backend::kProtocol;
  Engine engine = Engine::kMonteCarlo;
  std::string metric;
  std::size_t replications = 0;
  std::uint64_t seed = 0;
  TraceMode trace = TraceMode::kOff;
  // Protocol backend:
  protocol::GossipParams params;
  protocol::WorkloadParams workload;
  // Graph/component/flat backends:
  std::uint32_t num_nodes = 0;
  core::DegreeDistributionPtr fanout;
  double nonfailed_ratio = 1.0;
  double edge_keep = 1.0;
  // Flat backend:
  std::uint32_t source = 0;
  double loss = 0.0;
  // Static overlay shared by the protocol and flat backends (null for
  // topology = uniform):
  membership::CsrAdjacencyPtr topology;
};

std::string field(const ResolvedCase& c, const std::string& key,
                  const std::string& fallback) {
  const auto it = c.fields.find(key);
  return it == c.fields.end() ? fallback : it->second;
}

bool has_field(const ResolvedCase& c, const std::string& key) {
  return c.fields.find(key) != c.fields.end();
}

Backend parse_backend(const std::string& text) {
  if (text == "protocol") return Backend::kProtocol;
  if (text == "graph") return Backend::kGraph;
  if (text == "component") return Backend::kComponent;
  if (text == "flat") return Backend::kFlat;
  throw std::invalid_argument(
      "backend must be protocol, graph, component, or flat; got '" + text +
      "'");
}

Engine parse_engine(const std::string& text) {
  if (text == "montecarlo") return Engine::kMonteCarlo;
  if (text == "meanfield") return Engine::kMeanField;
  if (text == "both") return Engine::kBoth;
  throw std::invalid_argument(
      "engine must be montecarlo, meanfield, or both; got '" + text + "'");
}

TraceMode parse_trace(const std::string& text) {
  if (text == "off") return TraceMode::kOff;
  if (text == "counters") return TraceMode::kCounters;
  if (text == "rounds") return TraceMode::kRounds;
  throw std::invalid_argument("trace must be off, counters, or rounds; got '" +
                              text + "'");
}

BuiltCase build_case(const ScenarioSpec& spec, const ResolvedCase& resolved) {
  auto require = [&](const std::string& key) {
    if (!has_field(resolved, key)) {
      throw std::invalid_argument("scenario '" + spec.name() +
                                  "' case '" + resolved.label +
                                  "': missing required field '" + key + "'");
    }
    return resolved.fields.at(key);
  };

  BuiltCase built;
  built.resolved = resolved;
  built.backend = parse_backend(field(resolved, "backend", "protocol"));
  built.metric = field(resolved, "metric", "reliability");
  if (built.metric != "reliability" && built.metric != "success") {
    throw std::invalid_argument("metric must be reliability or success; got '" +
                                built.metric + "'");
  }
  built.num_nodes = to_u32(require("n"), "n");
  if (built.num_nodes < 2) {
    throw std::invalid_argument("scenario requires n >= 2");
  }
  built.replications =
      static_cast<std::size_t>(to_u64(field(resolved, "repetitions", "20"),
                                      "repetitions"));
  if (built.replications == 0) {
    throw std::invalid_argument("repetitions must be >= 1");
  }
  built.seed = to_u64(field(resolved, "seed", "42"), "seed");
  built.fanout = make_fanout(require("fanout"));
  built.engine = parse_engine(field(resolved, "engine", "montecarlo"));
  built.trace = parse_trace(field(resolved, "trace", "off"));

  const FailureConfig failure =
      make_failure(field(resolved, "failure", "none"));
  built.nonfailed_ratio = failure.nonfailed_ratio;
  const double loss =
      to_double(field(resolved, "loss", "0"), "loss probability");
  if (!(loss >= 0.0 && loss <= 1.0)) {
    throw std::invalid_argument("loss must be in [0, 1]");
  }

  const auto source = to_u32(field(resolved, "source", "0"), "source");
  if (source >= built.num_nodes) {
    throw std::invalid_argument("source must be < n");
  }
  built.source = source;
  built.loss = loss;

  // Topology family: every knob present is parsed and range-checked no
  // matter the family (so sweeps across families can share knob lines);
  // validate_topology_config then enforces the family's own requirements.
  TopologyConfig topo;
  topo.family =
      parse_topology_family(field(resolved, "topology", "uniform"));
  if (has_field(resolved, "topology.p")) {
    topo.has_p = true;
    topo.p = to_double(resolved.fields.at("topology.p"), "topology.p");
  }
  if (has_field(resolved, "topology.m")) {
    topo.has_m = true;
    topo.m = to_u32(resolved.fields.at("topology.m"), "topology.m");
  }
  if (has_field(resolved, "topology.clusters")) {
    topo.has_clusters = true;
    topo.clusters =
        to_u32(resolved.fields.at("topology.clusters"), "topology.clusters");
  }
  if (has_field(resolved, "topology.bridge_edges")) {
    topo.has_bridge_edges = true;
    topo.bridge_edges = to_u64(resolved.fields.at("topology.bridge_edges"),
                               "topology.bridge_edges");
  }
  if (!has_field(resolved, "topology") &&
      (topo.has_p || topo.has_m || topo.has_clusters ||
       topo.has_bridge_edges)) {
    throw std::invalid_argument(
        "topology.* knobs require the topology key (uniform, er, ba, wan)");
  }
  validate_topology_config(topo, built.num_nodes);
  if (topo.family != TopologyFamily::kUniform) {
    if (built.backend != Backend::kProtocol &&
        built.backend != Backend::kFlat) {
      throw std::invalid_argument(
          "non-uniform topologies need a round engine; use the protocol or "
          "flat backend with 'topology'");
    }
    if (built.engine != Engine::kMonteCarlo) {
      throw std::invalid_argument(
          "the mean-field engine assumes the uniform view; non-uniform "
          "topologies are montecarlo-only (the divergence is exactly what "
          "tests/validation/topology_divergence_test.cpp quantifies)");
    }
    if (has_field(resolved, "membership") ||
        has_field(resolved, "membership.dynamics")) {
      throw std::invalid_argument(
          "a non-uniform topology IS the membership view; drop "
          "'membership' and 'membership.dynamics' when topology != uniform");
    }
    // One overlay per case, from a dedicated substream of the case seed:
    // the protocol and flat backends (and every replication) gossip over
    // the identical graph.
    built.topology =
        build_topology_adjacency(topo, built.num_nodes, built.seed);
  }

  // The analytic engine derives exactly the static-failure regime the
  // flat backend simulates; anything outside it is a spec error, not a
  // silently wrong prediction.
  if (built.engine != Engine::kMonteCarlo) {
    if (built.backend == Backend::kComponent) {
      throw std::invalid_argument(
          "the mean-field engine predicts dissemination reliability, which "
          "the component backend does not measure; use the protocol, "
          "graph, or flat backend with 'engine'");
    }
    if (built.metric == "success") {
      throw std::invalid_argument(
          "the mean-field engine predicts expected reliability, not a "
          "success rate; use metric = reliability with 'engine'");
    }
    for (const auto& [key, reason] :
         std::initializer_list<std::pair<const char*, const char*>>{
             {"latency", "assumes unit latency"},
             {"membership.dynamics", "models no live membership"},
             {"edge_keep", "folds loss into the effective fanout instead"},
             {"workload.messages", "models one dissemination"},
             {"workload.spacing", "models one dissemination"},
             {"workload.sources", "models one dissemination"}}) {
      if (has_field(resolved, key)) {
        throw std::invalid_argument(std::string("the mean-field engine ") +
                                    reason + "; drop '" + key +
                                    "' or use engine = montecarlo");
      }
    }
    if (has_field(resolved, "membership") &&
        resolved.fields.at("membership") != "full") {
      throw std::invalid_argument(
          "the mean-field engine assumes the full membership view");
    }
    if (failure.schedule || failure.midrun_fraction > 0.0) {
      throw std::invalid_argument(
          "the mean-field engine models static crash failures only; use "
          "engine = montecarlo with the protocol backend for schedules");
    }
  }

  if (built.backend == Backend::kProtocol) {
    if (has_field(resolved, "edge_keep")) {
      throw std::invalid_argument(
          "edge_keep applies to the graph backend only; use loss or "
          "bursty_loss for the protocol backend");
    }
    auto& p = built.params;
    p.num_nodes = built.num_nodes;
    p.source = source;
    p.nonfailed_ratio = failure.nonfailed_ratio;
    p.fanout = built.fanout;
    p.loss_probability = loss;
    p.midrun_crash_fraction = failure.midrun_fraction;
    p.midrun_crash_time = failure.midrun_time;
    p.failure = failure.schedule;
    if (has_field(resolved, "latency")) {
      p.latency = make_latency(resolved.fields.at("latency"));
    }
    if (has_field(resolved, "membership")) {
      const std::string membership = resolved.fields.at("membership");
      if (membership != "full") {
        // Views are built once per case from a seed-derived stream, so a
        // case's partial-view topology is reproducible and independent of
        // the replication streams.
        p.membership = make_membership(
            membership, built.num_nodes,
            rng::RngStream(built.seed).substream(kMembershipSalt));
      }
    }
    if (built.topology != nullptr) {
      p.membership = membership::topology_membership(
          built.topology,
          "topology-" + topology_family_name(topo.family));
    }
    if (has_field(resolved, "membership.dynamics")) {
      p.dynamics = make_dynamics(resolved.fields.at("membership.dynamics"),
                                 built.num_nodes);
      if (p.dynamics != nullptr && p.membership != nullptr) {
        throw std::invalid_argument(
            "membership = " + resolved.fields.at("membership") +
            " and membership.dynamics = " +
            resolved.fields.at("membership.dynamics") +
            " are mutually exclusive: live dynamics build their own "
            "initial views (leave membership unset or 'full')");
      }
    }
    built.workload.num_messages =
        to_u32(field(resolved, "workload.messages", "1"),
               "workload.messages");
    if (built.workload.num_messages == 0) {
      throw std::invalid_argument("workload.messages must be >= 1");
    }
    built.workload.spacing = to_double(
        field(resolved, "workload.spacing", "1"), "workload.spacing");
    if (!(built.workload.spacing >= 0.0)) {
      throw std::invalid_argument("workload.spacing must be >= 0");
    }
    const std::string sources =
        field(resolved, "workload.sources", "fixed");
    if (sources == "spread") {
      built.workload.spread_sources = true;
    } else if (sources != "fixed") {
      throw std::invalid_argument(
          "workload.sources must be fixed or spread; got '" + sources + "'");
    }
    return built;
  }

  // Flat backend: the hot-path engine. Exactly the Fig. 4/5 regime — full
  // view, unit latency, static crashes, i.i.d. loss — everything else is a
  // spec error, not a silent fallback.
  if (built.backend == Backend::kFlat) {
    for (const auto& [key, reason] :
         std::initializer_list<std::pair<const char*, const char*>>{
             {"latency", "runs at unit latency"},
             {"membership.dynamics", "has no live membership"},
             {"edge_keep", "uses loss instead of edge thinning"},
             {"workload.messages", "runs single-message estimates only"},
             {"workload.spacing", "runs single-message estimates only"},
             {"workload.sources", "runs single-message estimates only"}}) {
      if (has_field(resolved, key)) {
        throw std::invalid_argument(std::string("flat backend ") + reason +
                                    "; drop '" + key +
                                    "' or use the protocol backend");
      }
    }
    if (has_field(resolved, "membership") &&
        resolved.fields.at("membership") != "full") {
      throw std::invalid_argument(
          "flat backend assumes the full membership view");
    }
    if (failure.schedule || failure.midrun_fraction > 0.0) {
      throw std::invalid_argument(
          "flat backend supports only static crash failures; use the "
          "protocol backend for schedules");
    }
    return built;
  }

  // Graph and component backends: the analytical-model counterparts. They
  // sample graphs directly, so only static crash failures make sense.
  const char* backend = built.backend == Backend::kGraph ? "graph" : "component";
  if (built.trace != TraceMode::kOff) {
    throw std::invalid_argument(
        std::string(backend) +
        " backend has no dissemination rounds to trace; use the protocol or "
        "flat backend with 'trace'");
  }
  if (failure.schedule || failure.midrun_fraction > 0.0) {
    throw std::invalid_argument(
        std::string(backend) +
        " backend supports only static crash failures; use the protocol "
        "backend for schedules");
  }
  if (has_field(resolved, "latency")) {
    throw std::invalid_argument(std::string(backend) +
                                " backend has no latency model");
  }
  if (has_field(resolved, "membership") &&
      resolved.fields.at("membership") != "full") {
    throw std::invalid_argument(std::string(backend) +
                                " backend assumes the full membership view");
  }
  if (has_field(resolved, "membership.dynamics") &&
      resolved.fields.at("membership.dynamics") != "none") {
    throw std::invalid_argument(
        std::string(backend) +
        " backend has no live membership; use the protocol backend for "
        "membership.dynamics");
  }
  for (const char* key : {"workload.messages", "workload.spacing",
                          "workload.sources"}) {
    if (has_field(resolved, key)) {
      throw std::invalid_argument(
          std::string(backend) +
          " backend runs single-message estimates only; use the protocol "
          "backend for workload.* fields");
    }
  }
  if (built.backend == Backend::kComponent) {
    if (loss > 0.0 || has_field(resolved, "edge_keep")) {
      throw std::invalid_argument(
          "component backend has no loss model; thin the fanout instead");
    }
    if (built.metric == "success") {
      throw std::invalid_argument(
          "component backend has no success metric (no per-execution "
          "source); use the protocol or graph backend");
    }
  } else {
    built.edge_keep =
        to_double(field(resolved, "edge_keep", "1"), "edge_keep");
    if (!(built.edge_keep >= 0.0 && built.edge_keep <= 1.0)) {
      throw std::invalid_argument("edge_keep must be in [0, 1]");
    }
    // Per-message loss thins every gossip edge independently, so it folds
    // into the keep probability.
    built.edge_keep *= 1.0 - loss;
  }
  return built;
}

CaseResult init_result(const ScenarioSpec& spec, const BuiltCase& built) {
  CaseResult result;
  result.scenario = spec.name();
  result.label = built.resolved.label;
  result.bindings = built.resolved.bindings;
  result.backend = built.backend;
  result.engine = built.engine;
  result.metric = built.metric;
  // A pure mean-field case is deterministic: no replications run.
  result.replications =
      built.engine == Engine::kMeanField ? 0 : built.replications;
  result.seed = built.seed;
  result.trace = built.trace;
  if (built.backend == Backend::kProtocol) {
    result.workload_messages = built.workload.num_messages;
    result.per_message_reliability.resize(built.workload.num_messages);
    result.per_message_latency.resize(built.workload.num_messages);
  }
  return result;
}

double informed_share(std::uint64_t informed, std::uint64_t alive) {
  return alive == 0 ? 0.0
                    : static_cast<double>(informed) /
                          static_cast<double>(alive);
}

/// Folds per-replication traces into the case aggregates, walking
/// replications in index order (bit-identical for any worker count).
/// Replications shorter than the longest one pad the trailing rounds with
/// zero events and their own held final informed fraction, so every
/// round-level summary carries count == replications.
void fold_traces(CaseResult& result, const std::vector<obs::RoundTrace>& traces) {
  for (const auto& t : traces) {
    const obs::RunSummary& s = t.summary();
    result.trace_rounds.add(static_cast<double>(s.rounds));
    result.trace_sends.add(static_cast<double>(s.sends));
    result.trace_redundant.add(static_cast<double>(s.redundant));
    result.trace_losses.add(static_cast<double>(s.losses));
    result.trace_dead_receipts.add(static_cast<double>(s.dead_receipts));
    result.trace_crashes.add(static_cast<double>(s.crashes));
    result.trace_joins.add(static_cast<double>(s.joins));
    result.trace_lease_expiries.add(static_cast<double>(s.lease_expiries));
    result.trace_informed_fraction.add(
        informed_share(s.informed_final, s.nonfailed_final));
  }
  if (result.trace != TraceMode::kRounds) return;

  std::size_t max_rounds = 0;
  for (const auto& t : traces) {
    max_rounds = std::max(max_rounds, t.rounds().size());
  }
  result.round_trace.assign(max_rounds, RoundAggregate{});
  for (const auto& t : traces) {
    const obs::RunSummary& s = t.summary();
    const double held_fraction =
        informed_share(s.informed_final, s.nonfailed_final);
    for (std::size_t i = 0; i < max_rounds; ++i) {
      RoundAggregate& agg = result.round_trace[i];
      if (i < t.rounds().size()) {
        const obs::RoundSample& sample = t.rounds()[i];
        agg.frontier.add(static_cast<double>(sample.frontier));
        agg.sends.add(static_cast<double>(sample.sends));
        agg.newly_informed.add(static_cast<double>(sample.newly_informed));
        agg.redundant.add(static_cast<double>(sample.redundant));
        agg.losses.add(static_cast<double>(sample.losses));
        agg.dead_receipts.add(static_cast<double>(sample.dead_receipts));
        agg.crashes.add(static_cast<double>(sample.crashes));
        agg.joins.add(static_cast<double>(sample.joins));
        agg.lease_expiries.add(static_cast<double>(sample.lease_expiries));
        agg.informed_fraction.add(
            informed_share(sample.informed, s.nonfailed_final));
      } else {
        agg.frontier.add(0.0);
        agg.sends.add(0.0);
        agg.newly_informed.add(0.0);
        agg.redundant.add(0.0);
        agg.losses.add(0.0);
        agg.dead_receipts.add(0.0);
        agg.crashes.add(0.0);
        agg.joins.add(0.0);
        agg.lease_expiries.add(0.0);
        agg.informed_fraction.add(held_fraction);
      }
    }
  }
}

}  // namespace

void validate_spec_keys(const ScenarioSpec& spec) {
  const std::vector<std::string> known(known_fields().begin(),
                                       known_fields().end());
  std::string report;
  for (const auto& [key, value] : spec.fields()) {
    if (known_fields().find(key) != known_fields().end()) continue;
    const std::string suggestion = nearest_name(key, known);
    if (!report.empty()) report += "; ";
    report += "unknown field '" + key + "'";
    if (!suggestion.empty()) {
      report += " (did you mean '" + suggestion + "'?)";
    }
  }
  if (!report.empty()) {
    throw std::invalid_argument("scenario '" + spec.name() + "': " + report);
  }
}

std::vector<CaseResult> ScenarioRunner::run(const ScenarioSpec& spec) const {
  return run(spec, nullptr);
}

std::vector<CaseResult> ScenarioRunner::run(const ScenarioSpec& spec,
                                            RunTelemetry* telemetry) const {
  const auto run_start = std::chrono::steady_clock::now();  // LINT-ALLOW(wall-clock): run-manifest telemetry (total_wall_seconds), never a metric
  validate_spec_keys(spec);
  const auto resolved = spec.expand_cases();
  std::vector<BuiltCase> built;
  built.reserve(resolved.size());
  for (const auto& c : resolved) {
    built.push_back(build_case(spec, c));
  }

  std::vector<CaseResult> results;
  results.reserve(built.size());
  for (const auto& b : built) {
    results.push_back(init_result(spec, b));
  }
  if (telemetry != nullptr) {
    telemetry->cases.assign(built.size(), CaseTelemetry{});
  }

  // Protocol-backend cases: flatten every (case, replication) pair into one
  // task list so any pool shape drains it; slot r of case c is always
  // written by the same-seeded execution, and the fold below walks slots in
  // index order — bit-identical results for any worker count.
  struct Slot {
    double reliability = 0.0;
    double messages = 0.0;
    double completion = 0.0;
    double midrun = 0.0;
    double seconds = 0.0;  ///< Wall time of this replication (telemetry).
    bool success = false;
    std::vector<double> msg_reliability;  ///< Per workload message.
    std::vector<double> msg_latency;
    obs::RoundTrace trace;  ///< Filled only when the case is traced.
  };
  std::vector<std::size_t> proto_cases;
  std::vector<std::size_t> task_offset;  // prefix sums into the task list
  std::size_t total_tasks = 0;
  for (std::size_t c = 0; c < built.size(); ++c) {
    if (built[c].backend != Backend::kProtocol) continue;
    if (built[c].engine == Engine::kMeanField) continue;  // analytic only
    proto_cases.push_back(c);
    task_offset.push_back(total_tasks);
    total_tasks += built[c].replications;
  }
  std::vector<Slot> slots(total_tasks);
  const auto run_task = [&](std::size_t task) {
    // Locate the owning case by binary search over the offsets.
    std::size_t lo = 0;
    std::size_t hi = proto_cases.size();
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      (task_offset[mid] <= task ? lo : hi) = mid;
    }
    const BuiltCase& b = built[proto_cases[lo]];
    const std::size_t rep = task - task_offset[lo];
    auto rng = rng::RngStream(b.seed).substream(rep);
    Slot& slot = slots[task];
    obs::Probe* probe = b.trace == TraceMode::kOff ? nullptr : &slot.trace;
    const auto start = std::chrono::steady_clock::now();  // LINT-ALLOW(wall-clock): per-replication telemetry (Slot::seconds), never a metric
    const auto exec =
        protocol::run_gossip_workload(b.params, b.workload, rng, probe);
    slot.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)  // LINT-ALLOW(wall-clock): per-replication telemetry (Slot::seconds), never a metric
            .count();
    slot.reliability = exec.mean_reliability;
    slot.messages = static_cast<double>(exec.messages_sent);
    slot.completion = exec.completion_time;
    slot.midrun = static_cast<double>(exec.midrun_crashes);
    slot.success = exec.all_success;
    slot.msg_reliability.reserve(exec.messages.size());
    slot.msg_latency.reserve(exec.messages.size());
    for (const auto& message : exec.messages) {
      slot.msg_reliability.push_back(message.reliability);
      slot.msg_latency.push_back(message.mean_latency);
    }
  };
  if (pool_ != nullptr && total_tasks > 0) {
    parallel::parallel_for(*pool_, total_tasks, run_task);
  } else {
    for (std::size_t task = 0; task < total_tasks; ++task) run_task(task);
  }
  for (std::size_t i = 0; i < proto_cases.size(); ++i) {
    const std::size_t c = proto_cases[i];
    const BuiltCase& b = built[c];
    CaseResult& result = results[c];
    for (std::size_t r = 0; r < b.replications; ++r) {
      const Slot& slot = slots[task_offset[i] + r];
      result.reliability.add(slot.reliability);
      result.messages.add(slot.messages);
      result.completion_time.add(slot.completion);
      result.midrun_crashes.add(slot.midrun);
      if (slot.success) ++result.success_count;
      for (std::size_t m = 0; m < slot.msg_reliability.size(); ++m) {
        result.per_message_reliability[m].add(slot.msg_reliability[m]);
        result.per_message_latency[m].add(slot.msg_latency[m]);
      }
    }
    if (b.trace != TraceMode::kOff) {
      std::vector<obs::RoundTrace> traces;
      traces.reserve(b.replications);
      for (std::size_t r = 0; r < b.replications; ++r) {
        traces.push_back(std::move(slots[task_offset[i] + r].trace));
      }
      fold_traces(result, traces);
    }
    if (telemetry != nullptr) {
      CaseTelemetry& tel = telemetry->cases[c];
      tel.replication_seconds.reserve(b.replications);
      for (std::size_t r = 0; r < b.replications; ++r) {
        tel.replication_seconds.push_back(slots[task_offset[i] + r].seconds);
        tel.wall_seconds += slots[task_offset[i] + r].seconds;
      }
    }
  }

  // Graph/component cases delegate to the existing seeded estimators (which
  // are themselves deterministic for any pool), case by case in order.
  for (std::size_t c = 0; c < built.size(); ++c) {
    const BuiltCase& b = built[c];
    if (b.backend == Backend::kProtocol) continue;
    if (b.engine == Engine::kMeanField) continue;  // analytic only
    experiment::MonteCarloOptions options;
    options.replications = b.replications;
    options.seed = b.seed;
    options.pool = pool_;
    if (telemetry != nullptr) {
      options.replication_seconds = &telemetry->cases[c].replication_seconds;
    }
    if (b.backend == Backend::kGraph) {
      const auto estimate = experiment::estimate_reliability_graph(
          b.num_nodes, *b.fanout, b.nonfailed_ratio, options, b.edge_keep);
      results[c].reliability = estimate.reliability;
      results[c].messages = estimate.messages;
      results[c].success_count = estimate.success_count;
    } else if (b.backend == Backend::kFlat) {
      protocol::FlatGossipParams fp;
      fp.num_nodes = b.num_nodes;
      fp.source = b.source;
      fp.nonfailed_ratio = b.nonfailed_ratio;
      fp.loss_probability = b.loss;
      fp.fanout = b.fanout;
      fp.topology = b.topology;
      std::vector<obs::RoundTrace> traces;
      const auto estimate = experiment::estimate_reliability_flat(
          fp, options, b.trace == TraceMode::kOff ? nullptr : &traces);
      results[c].reliability = estimate.reliability;
      results[c].messages = estimate.messages;
      results[c].success_count = estimate.success_count;
      if (b.trace != TraceMode::kOff) {
        fold_traces(results[c], traces);
      }
    } else {
      const auto estimate = experiment::estimate_giant_component(
          b.num_nodes, *b.fanout, b.nonfailed_ratio, options);
      results[c].reliability = estimate.giant_fraction_alive;
    }
    if (telemetry != nullptr) {
      CaseTelemetry& tel = telemetry->cases[c];
      for (const double s : tel.replication_seconds) tel.wall_seconds += s;
    }
  }
  // Analytic-engine pass (engine = meanfield | both): deterministic, one
  // closed-form evaluation per case — microseconds, so it runs serially
  // after the simulations, in case order.
  for (std::size_t c = 0; c < built.size(); ++c) {
    const BuiltCase& b = built[c];
    if (b.engine == Engine::kMonteCarlo) continue;
    protocol::FlatGossipParams fp;
    fp.num_nodes = b.num_nodes;
    fp.source = b.source;
    fp.nonfailed_ratio = b.nonfailed_ratio;
    fp.loss_probability = b.loss;
    fp.fanout = b.fanout;
    const auto mf = experiment::estimate_reliability_meanfield(fp);
    CaseResult& result = results[c];
    result.has_meanfield = true;
    result.meanfield_reliability = mf.reliability;
    result.meanfield_messages = mf.messages;
    result.meanfield_rounds = mf.rounds;
    result.meanfield_extinction = mf.extinction_probability;
    if (b.trace == TraceMode::kRounds) {
      result.meanfield_trace = mf.trajectory.rounds;
    }
    if (b.engine == Engine::kMeanField) {
      // The prediction stands in for the replication series (one
      // deterministic sample; CIs degenerate to the point value).
      result.reliability.add(mf.reliability);
      result.messages.add(mf.messages);
      if (b.trace != TraceMode::kOff) {
        result.trace_rounds.add(mf.rounds);
        result.trace_sends.add(mf.messages);
        result.trace_redundant.add(mf.trajectory.redundant);
        result.trace_losses.add(mf.trajectory.losses);
        result.trace_dead_receipts.add(mf.trajectory.dead_receipts);
        result.trace_crashes.add(0.0);
        result.trace_joins.add(0.0);
        result.trace_lease_expiries.add(0.0);
        result.trace_informed_fraction.add(mf.reliability);
      }
    }
  }
  if (telemetry != nullptr) {
    telemetry->total_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -  // LINT-ALLOW(wall-clock): run-manifest telemetry (total_wall_seconds), never a metric
                                      run_start)
            .count();
  }
  return results;
}

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kProtocol: return "protocol";
    case Backend::kGraph: return "graph";
    case Backend::kComponent: return "component";
    case Backend::kFlat: return "flat";
  }
  return "unknown";
}

std::string engine_name(Engine engine) {
  switch (engine) {
    case Engine::kMonteCarlo: return "montecarlo";
    case Engine::kMeanField: return "meanfield";
    case Engine::kBoth: return "both";
  }
  return "unknown";
}

std::string trace_mode_name(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff: return "off";
    case TraceMode::kCounters: return "counters";
    case TraceMode::kRounds: return "rounds";
  }
  return "unknown";
}

std::vector<std::string> known_spec_keys() {
  return {known_fields().begin(), known_fields().end()};
}

void write_results_csv(const std::string& path,
                       const std::vector<CaseResult>& results) {
  experiment::CsvWriter csv(
      path, {"scenario", "case", "backend", "metric", "replications", "seed",
             "reliability_mean", "reliability_ci_lo", "reliability_ci_hi",
             "success_rate", "messages_mean", "completion_mean",
             "midrun_crashes_mean", "workload_messages",
             "msg_reliability_min", "msg_latency_mean", "engine",
             "meanfield_reliability", "abs_diff"});
  for (const auto& r : results) {
    const auto ci = r.reliability_ci();
    // Workload columns: the weakest message's mean reliability and the
    // latency averaged over messages; single-message cases degenerate to
    // the case-level reliability. Backends without per-message data leave
    // the latency column empty.
    double msg_min = r.reliability.mean();
    double latency_sum = 0.0;
    for (const auto& msg : r.per_message_reliability) {
      msg_min = std::min(msg_min, msg.mean());
    }
    for (const auto& msg : r.per_message_latency) {
      latency_sum += msg.mean();  // LINT-ALLOW(float-accumulation): mean over per-message summaries in fixed message-index order
    }
    const std::string msg_latency =
        r.per_message_latency.empty()
            ? std::string()
            : experiment::fmt_double(
                  latency_sum /
                      static_cast<double>(r.per_message_latency.size()),
                  3);
    // Analytic columns stay empty for pure Monte-Carlo cases; abs_diff is
    // only meaningful when both engines produced a number.
    const std::string mf_reliability =
        r.has_meanfield
            ? experiment::fmt_double(r.meanfield_reliability, 6)
            : std::string();
    const std::string mf_diff =
        r.engine == Engine::kBoth && r.has_meanfield
            ? experiment::fmt_double(r.abs_diff(), 6)
            : std::string();
    csv.add_row({r.scenario, r.label, backend_name(r.backend), r.metric,
                 std::to_string(r.replications), std::to_string(r.seed),
                 experiment::fmt_double(r.reliability.mean(), 6),
                 experiment::fmt_double(ci.lo, 6),
                 experiment::fmt_double(ci.hi, 6),
                 experiment::fmt_double(r.success_rate(), 6),
                 experiment::fmt_double(r.messages.mean(), 1),
                 experiment::fmt_double(r.completion_time.mean(), 3),
                 experiment::fmt_double(r.midrun_crashes.mean(), 1),
                 std::to_string(r.workload_messages),
                 experiment::fmt_double(msg_min, 6), msg_latency,
                 engine_name(r.engine), mf_reliability, mf_diff});
  }
}

void write_trace_csv(const std::string& path,
                     const std::vector<CaseResult>& results) {
  experiment::CsvWriter csv(
      path, {"scenario", "case", "backend", "round", "replications",
             "frontier_mean", "sends_mean", "newly_informed_mean",
             "redundant_mean", "losses_mean", "dead_receipts_mean",
             "crashes_mean", "joins_mean", "lease_expiries_mean",
             "informed_fraction_mean", "informed_fraction_ci_lo",
             "informed_fraction_ci_hi"});
  for (const auto& r : results) {
    if (r.trace != TraceMode::kRounds) continue;
    // Analytic trajectory rows (engine = meanfield | both): deterministic
    // expectations, tagged "meanfield" in the backend column so they sit
    // next to the simulated aggregates without colliding, with degenerate
    // CIs and 0 in the replications column.
    for (const auto& point : r.meanfield_trace) {
      const std::string fraction =
          experiment::fmt_double(point.informed_fraction, 6);
      csv.add_row({r.scenario, r.label, "meanfield",
                   std::to_string(point.round), "0",
                   experiment::fmt_double(point.frontier, 3),
                   experiment::fmt_double(point.sends, 3),
                   experiment::fmt_double(point.newly_informed, 3),
                   experiment::fmt_double(point.redundant, 3),
                   experiment::fmt_double(point.losses, 3),
                   experiment::fmt_double(point.dead_receipts, 3),
                   experiment::fmt_double(0.0, 3),
                   experiment::fmt_double(0.0, 3),
                   experiment::fmt_double(0.0, 3), fraction, fraction,
                   fraction});
    }
    for (std::size_t round = 0; round < r.round_trace.size(); ++round) {
      const RoundAggregate& agg = r.round_trace[round];
      const auto ci =
          stats::mean_confidence_interval(agg.informed_fraction, 0.95);
      csv.add_row({r.scenario, r.label, backend_name(r.backend),
                   std::to_string(round), std::to_string(r.replications),
                   experiment::fmt_double(agg.frontier.mean(), 3),
                   experiment::fmt_double(agg.sends.mean(), 3),
                   experiment::fmt_double(agg.newly_informed.mean(), 3),
                   experiment::fmt_double(agg.redundant.mean(), 3),
                   experiment::fmt_double(agg.losses.mean(), 3),
                   experiment::fmt_double(agg.dead_receipts.mean(), 3),
                   experiment::fmt_double(agg.crashes.mean(), 3),
                   experiment::fmt_double(agg.joins.mean(), 3),
                   experiment::fmt_double(agg.lease_expiries.mean(), 3),
                   experiment::fmt_double(agg.informed_fraction.mean(), 6),
                   experiment::fmt_double(ci.lo, 6),
                   experiment::fmt_double(ci.hi, 6)});
    }
  }
}

void print_results_table(std::ostream& os,
                         const std::vector<CaseResult>& results) {
  int label_width = 10;
  for (const auto& r : results) {
    label_width = std::max(label_width, static_cast<int>(r.label.size()) + 2);
  }
  // Analytic columns only appear when some case ran the mean-field
  // engine, so pure Monte-Carlo outputs are byte-identical to before.
  const bool any_meanfield =
      std::any_of(results.begin(), results.end(),
                  [](const CaseResult& r) { return r.has_meanfield; });
  experiment::TextTable table;
  table.column("case", label_width)
      .column("reliability", 16)
      .column("success", 8)
      .column("messages", 10)
      .column("reps", 5);
  if (any_meanfield) {
    table.column("engine", 12).column("meanfield", 11).column("absdiff", 9);
  }
  for (const auto& r : results) {
    const auto ci = r.reliability_ci();
    std::vector<std::string> row{
        r.label,
        experiment::fmt_pm(r.reliability.mean(),
                           0.5 * ci.width(), 4),
        experiment::fmt_double(r.success_rate(), 3),
        experiment::fmt_double(r.messages.mean(), 1),
        std::to_string(r.replications)};
    if (any_meanfield) {
      row.push_back(engine_name(r.engine));
      row.push_back(r.has_meanfield
                        ? experiment::fmt_double(r.meanfield_reliability, 4)
                        : "-");
      row.push_back(r.engine == Engine::kBoth && r.has_meanfield
                        ? experiment::fmt_double(r.abs_diff(), 4)
                        : "-");
    }
    table.add_row(row);
  }
  table.print(os);
}

}  // namespace gossip::scenario
