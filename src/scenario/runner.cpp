#include "scenario/runner.hpp"

#include <algorithm>
#include <initializer_list>
#include <ostream>
#include <set>
#include <stdexcept>
#include <utility>

#include "experiment/component_mc.hpp"
#include "experiment/csv.hpp"
#include "experiment/monte_carlo.hpp"
#include "experiment/table.hpp"
#include "parallel/parallel_for.hpp"
#include "protocol/gossip_multicast.hpp"
#include "scenario/registry.hpp"

namespace gossip::scenario {

namespace {

/// Every key the engine understands; anything else in a spec is a typo and
/// throws rather than being silently ignored.
const std::set<std::string>& known_fields() {
  static const std::set<std::string> keys{
      "name",        "description",
      "n",           "source",
      "backend",     "fanout",
      "membership",  "membership.dynamics",
      "latency",     "loss",
      "failure",     "metric",
      "repetitions", "seed",
      "edge_keep",   "workload.messages",
      "workload.spacing",  "workload.sources",
  };
  return keys;
}

constexpr std::uint64_t kMembershipSalt = 0x6d656d62;  // "memb"

struct BuiltCase {
  ResolvedCase resolved;
  Backend backend = Backend::kProtocol;
  std::string metric;
  std::size_t replications = 0;
  std::uint64_t seed = 0;
  // Protocol backend:
  protocol::GossipParams params;
  protocol::WorkloadParams workload;
  // Graph/component/flat backends:
  std::uint32_t num_nodes = 0;
  core::DegreeDistributionPtr fanout;
  double nonfailed_ratio = 1.0;
  double edge_keep = 1.0;
  // Flat backend:
  std::uint32_t source = 0;
  double loss = 0.0;
};

std::string field(const ResolvedCase& c, const std::string& key,
                  const std::string& fallback) {
  const auto it = c.fields.find(key);
  return it == c.fields.end() ? fallback : it->second;
}

bool has_field(const ResolvedCase& c, const std::string& key) {
  return c.fields.find(key) != c.fields.end();
}

Backend parse_backend(const std::string& text) {
  if (text == "protocol") return Backend::kProtocol;
  if (text == "graph") return Backend::kGraph;
  if (text == "component") return Backend::kComponent;
  if (text == "flat") return Backend::kFlat;
  throw std::invalid_argument(
      "backend must be protocol, graph, component, or flat; got '" + text +
      "'");
}

BuiltCase build_case(const ScenarioSpec& spec, const ResolvedCase& resolved) {
  auto require = [&](const std::string& key) {
    if (!has_field(resolved, key)) {
      throw std::invalid_argument("scenario '" + spec.name() +
                                  "' case '" + resolved.label +
                                  "': missing required field '" + key + "'");
    }
    return resolved.fields.at(key);
  };

  BuiltCase built;
  built.resolved = resolved;
  built.backend = parse_backend(field(resolved, "backend", "protocol"));
  built.metric = field(resolved, "metric", "reliability");
  if (built.metric != "reliability" && built.metric != "success") {
    throw std::invalid_argument("metric must be reliability or success; got '" +
                                built.metric + "'");
  }
  built.num_nodes = to_u32(require("n"), "n");
  if (built.num_nodes < 2) {
    throw std::invalid_argument("scenario requires n >= 2");
  }
  built.replications =
      static_cast<std::size_t>(to_u64(field(resolved, "repetitions", "20"),
                                      "repetitions"));
  if (built.replications == 0) {
    throw std::invalid_argument("repetitions must be >= 1");
  }
  built.seed = to_u64(field(resolved, "seed", "42"), "seed");
  built.fanout = make_fanout(require("fanout"));

  const FailureConfig failure =
      make_failure(field(resolved, "failure", "none"));
  built.nonfailed_ratio = failure.nonfailed_ratio;
  const double loss =
      to_double(field(resolved, "loss", "0"), "loss probability");
  if (!(loss >= 0.0 && loss <= 1.0)) {
    throw std::invalid_argument("loss must be in [0, 1]");
  }

  const auto source = to_u32(field(resolved, "source", "0"), "source");
  if (source >= built.num_nodes) {
    throw std::invalid_argument("source must be < n");
  }

  if (built.backend == Backend::kProtocol) {
    if (has_field(resolved, "edge_keep")) {
      throw std::invalid_argument(
          "edge_keep applies to the graph backend only; use loss or "
          "bursty_loss for the protocol backend");
    }
    auto& p = built.params;
    p.num_nodes = built.num_nodes;
    p.source = source;
    p.nonfailed_ratio = failure.nonfailed_ratio;
    p.fanout = built.fanout;
    p.loss_probability = loss;
    p.midrun_crash_fraction = failure.midrun_fraction;
    p.midrun_crash_time = failure.midrun_time;
    p.failure = failure.schedule;
    if (has_field(resolved, "latency")) {
      p.latency = make_latency(resolved.fields.at("latency"));
    }
    if (has_field(resolved, "membership")) {
      const std::string membership = resolved.fields.at("membership");
      if (membership != "full") {
        // Views are built once per case from a seed-derived stream, so a
        // case's partial-view topology is reproducible and independent of
        // the replication streams.
        p.membership = make_membership(
            membership, built.num_nodes,
            rng::RngStream(built.seed).substream(kMembershipSalt));
      }
    }
    if (has_field(resolved, "membership.dynamics")) {
      p.dynamics = make_dynamics(resolved.fields.at("membership.dynamics"),
                                 built.num_nodes);
      if (p.dynamics != nullptr && p.membership != nullptr) {
        throw std::invalid_argument(
            "membership = " + resolved.fields.at("membership") +
            " and membership.dynamics = " +
            resolved.fields.at("membership.dynamics") +
            " are mutually exclusive: live dynamics build their own "
            "initial views (leave membership unset or 'full')");
      }
    }
    built.workload.num_messages =
        to_u32(field(resolved, "workload.messages", "1"),
               "workload.messages");
    if (built.workload.num_messages == 0) {
      throw std::invalid_argument("workload.messages must be >= 1");
    }
    built.workload.spacing = to_double(
        field(resolved, "workload.spacing", "1"), "workload.spacing");
    if (!(built.workload.spacing >= 0.0)) {
      throw std::invalid_argument("workload.spacing must be >= 0");
    }
    const std::string sources =
        field(resolved, "workload.sources", "fixed");
    if (sources == "spread") {
      built.workload.spread_sources = true;
    } else if (sources != "fixed") {
      throw std::invalid_argument(
          "workload.sources must be fixed or spread; got '" + sources + "'");
    }
    return built;
  }

  // Flat backend: the hot-path engine. Exactly the Fig. 4/5 regime — full
  // view, unit latency, static crashes, i.i.d. loss — everything else is a
  // spec error, not a silent fallback.
  if (built.backend == Backend::kFlat) {
    for (const auto& [key, reason] :
         std::initializer_list<std::pair<const char*, const char*>>{
             {"latency", "runs at unit latency"},
             {"membership.dynamics", "has no live membership"},
             {"edge_keep", "uses loss instead of edge thinning"},
             {"workload.messages", "runs single-message estimates only"},
             {"workload.spacing", "runs single-message estimates only"},
             {"workload.sources", "runs single-message estimates only"}}) {
      if (has_field(resolved, key)) {
        throw std::invalid_argument(std::string("flat backend ") + reason +
                                    "; drop '" + key +
                                    "' or use the protocol backend");
      }
    }
    if (has_field(resolved, "membership") &&
        resolved.fields.at("membership") != "full") {
      throw std::invalid_argument(
          "flat backend assumes the full membership view");
    }
    if (failure.schedule || failure.midrun_fraction > 0.0) {
      throw std::invalid_argument(
          "flat backend supports only static crash failures; use the "
          "protocol backend for schedules");
    }
    built.source = source;
    built.loss = loss;
    return built;
  }

  // Graph and component backends: the analytical-model counterparts. They
  // sample graphs directly, so only static crash failures make sense.
  const char* backend = built.backend == Backend::kGraph ? "graph" : "component";
  if (failure.schedule || failure.midrun_fraction > 0.0) {
    throw std::invalid_argument(
        std::string(backend) +
        " backend supports only static crash failures; use the protocol "
        "backend for schedules");
  }
  if (has_field(resolved, "latency")) {
    throw std::invalid_argument(std::string(backend) +
                                " backend has no latency model");
  }
  if (has_field(resolved, "membership") &&
      resolved.fields.at("membership") != "full") {
    throw std::invalid_argument(std::string(backend) +
                                " backend assumes the full membership view");
  }
  if (has_field(resolved, "membership.dynamics") &&
      resolved.fields.at("membership.dynamics") != "none") {
    throw std::invalid_argument(
        std::string(backend) +
        " backend has no live membership; use the protocol backend for "
        "membership.dynamics");
  }
  for (const char* key : {"workload.messages", "workload.spacing",
                          "workload.sources"}) {
    if (has_field(resolved, key)) {
      throw std::invalid_argument(
          std::string(backend) +
          " backend runs single-message estimates only; use the protocol "
          "backend for workload.* fields");
    }
  }
  if (built.backend == Backend::kComponent) {
    if (loss > 0.0 || has_field(resolved, "edge_keep")) {
      throw std::invalid_argument(
          "component backend has no loss model; thin the fanout instead");
    }
    if (built.metric == "success") {
      throw std::invalid_argument(
          "component backend has no success metric (no per-execution "
          "source); use the protocol or graph backend");
    }
  } else {
    built.edge_keep =
        to_double(field(resolved, "edge_keep", "1"), "edge_keep");
    if (!(built.edge_keep >= 0.0 && built.edge_keep <= 1.0)) {
      throw std::invalid_argument("edge_keep must be in [0, 1]");
    }
    // Per-message loss thins every gossip edge independently, so it folds
    // into the keep probability.
    built.edge_keep *= 1.0 - loss;
  }
  return built;
}

CaseResult init_result(const ScenarioSpec& spec, const BuiltCase& built) {
  CaseResult result;
  result.scenario = spec.name();
  result.label = built.resolved.label;
  result.bindings = built.resolved.bindings;
  result.backend = built.backend;
  result.metric = built.metric;
  result.replications = built.replications;
  result.seed = built.seed;
  if (built.backend == Backend::kProtocol) {
    result.workload_messages = built.workload.num_messages;
    result.per_message_reliability.resize(built.workload.num_messages);
    result.per_message_latency.resize(built.workload.num_messages);
  }
  return result;
}

}  // namespace

void validate_spec_keys(const ScenarioSpec& spec) {
  const std::vector<std::string> known(known_fields().begin(),
                                       known_fields().end());
  std::string report;
  for (const auto& [key, value] : spec.fields()) {
    if (known_fields().find(key) != known_fields().end()) continue;
    const std::string suggestion = nearest_name(key, known);
    if (!report.empty()) report += "; ";
    report += "unknown field '" + key + "'";
    if (!suggestion.empty()) {
      report += " (did you mean '" + suggestion + "'?)";
    }
  }
  if (!report.empty()) {
    throw std::invalid_argument("scenario '" + spec.name() + "': " + report);
  }
}

std::vector<CaseResult> ScenarioRunner::run(const ScenarioSpec& spec) const {
  validate_spec_keys(spec);
  const auto resolved = spec.expand_cases();
  std::vector<BuiltCase> built;
  built.reserve(resolved.size());
  for (const auto& c : resolved) {
    built.push_back(build_case(spec, c));
  }

  std::vector<CaseResult> results;
  results.reserve(built.size());
  for (const auto& b : built) {
    results.push_back(init_result(spec, b));
  }

  // Protocol-backend cases: flatten every (case, replication) pair into one
  // task list so any pool shape drains it; slot r of case c is always
  // written by the same-seeded execution, and the fold below walks slots in
  // index order — bit-identical results for any worker count.
  struct Slot {
    double reliability = 0.0;
    double messages = 0.0;
    double completion = 0.0;
    double midrun = 0.0;
    bool success = false;
    std::vector<double> msg_reliability;  ///< Per workload message.
    std::vector<double> msg_latency;
  };
  std::vector<std::size_t> proto_cases;
  std::vector<std::size_t> task_offset;  // prefix sums into the task list
  std::size_t total_tasks = 0;
  for (std::size_t c = 0; c < built.size(); ++c) {
    if (built[c].backend != Backend::kProtocol) continue;
    proto_cases.push_back(c);
    task_offset.push_back(total_tasks);
    total_tasks += built[c].replications;
  }
  std::vector<Slot> slots(total_tasks);
  const auto run_task = [&](std::size_t task) {
    // Locate the owning case by binary search over the offsets.
    std::size_t lo = 0;
    std::size_t hi = proto_cases.size();
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      (task_offset[mid] <= task ? lo : hi) = mid;
    }
    const BuiltCase& b = built[proto_cases[lo]];
    const std::size_t rep = task - task_offset[lo];
    auto rng = rng::RngStream(b.seed).substream(rep);
    const auto exec = protocol::run_gossip_workload(b.params, b.workload, rng);
    Slot& slot = slots[task];
    slot.reliability = exec.mean_reliability;
    slot.messages = static_cast<double>(exec.messages_sent);
    slot.completion = exec.completion_time;
    slot.midrun = static_cast<double>(exec.midrun_crashes);
    slot.success = exec.all_success;
    slot.msg_reliability.reserve(exec.messages.size());
    slot.msg_latency.reserve(exec.messages.size());
    for (const auto& message : exec.messages) {
      slot.msg_reliability.push_back(message.reliability);
      slot.msg_latency.push_back(message.mean_latency);
    }
  };
  if (pool_ != nullptr && total_tasks > 0) {
    parallel::parallel_for(*pool_, total_tasks, run_task);
  } else {
    for (std::size_t task = 0; task < total_tasks; ++task) run_task(task);
  }
  for (std::size_t i = 0; i < proto_cases.size(); ++i) {
    CaseResult& result = results[proto_cases[i]];
    for (std::size_t r = 0; r < built[proto_cases[i]].replications; ++r) {
      const Slot& slot = slots[task_offset[i] + r];
      result.reliability.add(slot.reliability);
      result.messages.add(slot.messages);
      result.completion_time.add(slot.completion);
      result.midrun_crashes.add(slot.midrun);
      if (slot.success) ++result.success_count;
      for (std::size_t m = 0; m < slot.msg_reliability.size(); ++m) {
        result.per_message_reliability[m].add(slot.msg_reliability[m]);
        result.per_message_latency[m].add(slot.msg_latency[m]);
      }
    }
  }

  // Graph/component cases delegate to the existing seeded estimators (which
  // are themselves deterministic for any pool), case by case in order.
  for (std::size_t c = 0; c < built.size(); ++c) {
    const BuiltCase& b = built[c];
    if (b.backend == Backend::kProtocol) continue;
    experiment::MonteCarloOptions options;
    options.replications = b.replications;
    options.seed = b.seed;
    options.pool = pool_;
    if (b.backend == Backend::kGraph) {
      const auto estimate = experiment::estimate_reliability_graph(
          b.num_nodes, *b.fanout, b.nonfailed_ratio, options, b.edge_keep);
      results[c].reliability = estimate.reliability;
      results[c].messages = estimate.messages;
      results[c].success_count = estimate.success_count;
    } else if (b.backend == Backend::kFlat) {
      protocol::FlatGossipParams fp;
      fp.num_nodes = b.num_nodes;
      fp.source = b.source;
      fp.nonfailed_ratio = b.nonfailed_ratio;
      fp.loss_probability = b.loss;
      fp.fanout = b.fanout;
      const auto estimate =
          experiment::estimate_reliability_flat(fp, options);
      results[c].reliability = estimate.reliability;
      results[c].messages = estimate.messages;
      results[c].success_count = estimate.success_count;
    } else {
      const auto estimate = experiment::estimate_giant_component(
          b.num_nodes, *b.fanout, b.nonfailed_ratio, options);
      results[c].reliability = estimate.giant_fraction_alive;
    }
  }
  return results;
}

std::string backend_name(Backend backend) {
  switch (backend) {
    case Backend::kProtocol: return "protocol";
    case Backend::kGraph: return "graph";
    case Backend::kComponent: return "component";
    case Backend::kFlat: return "flat";
  }
  return "unknown";
}

void write_results_csv(const std::string& path,
                       const std::vector<CaseResult>& results) {
  experiment::CsvWriter csv(
      path, {"scenario", "case", "backend", "metric", "replications", "seed",
             "reliability_mean", "reliability_ci_lo", "reliability_ci_hi",
             "success_rate", "messages_mean", "completion_mean",
             "midrun_crashes_mean", "workload_messages",
             "msg_reliability_min", "msg_latency_mean"});
  for (const auto& r : results) {
    const auto ci = r.reliability_ci();
    // Workload columns: the weakest message's mean reliability and the
    // latency averaged over messages; single-message cases degenerate to
    // the case-level reliability. Backends without per-message data leave
    // the latency column empty.
    double msg_min = r.reliability.mean();
    double latency_sum = 0.0;
    for (const auto& msg : r.per_message_reliability) {
      msg_min = std::min(msg_min, msg.mean());
    }
    for (const auto& msg : r.per_message_latency) {
      latency_sum += msg.mean();
    }
    const std::string msg_latency =
        r.per_message_latency.empty()
            ? std::string()
            : experiment::fmt_double(
                  latency_sum /
                      static_cast<double>(r.per_message_latency.size()),
                  3);
    csv.add_row({r.scenario, r.label, backend_name(r.backend), r.metric,
                 std::to_string(r.replications), std::to_string(r.seed),
                 experiment::fmt_double(r.reliability.mean(), 6),
                 experiment::fmt_double(ci.lo, 6),
                 experiment::fmt_double(ci.hi, 6),
                 experiment::fmt_double(r.success_rate(), 6),
                 experiment::fmt_double(r.messages.mean(), 1),
                 experiment::fmt_double(r.completion_time.mean(), 3),
                 experiment::fmt_double(r.midrun_crashes.mean(), 1),
                 std::to_string(r.workload_messages),
                 experiment::fmt_double(msg_min, 6), msg_latency});
  }
}

void print_results_table(std::ostream& os,
                         const std::vector<CaseResult>& results) {
  int label_width = 10;
  for (const auto& r : results) {
    label_width = std::max(label_width, static_cast<int>(r.label.size()) + 2);
  }
  experiment::TextTable table;
  table.column("case", label_width)
      .column("reliability", 16)
      .column("success", 8)
      .column("messages", 10)
      .column("reps", 5);
  for (const auto& r : results) {
    const auto ci = r.reliability_ci();
    table.add_row(
        {r.label,
         experiment::fmt_pm(r.reliability.mean(),
                            0.5 * ci.width(), 4),
         experiment::fmt_double(r.success_rate(), 3),
         experiment::fmt_double(r.messages.mean(), 1),
         std::to_string(r.replications)});
  }
  table.print(os);
}

}  // namespace gossip::scenario
