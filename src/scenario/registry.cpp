#include "scenario/registry.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <utility>

#include "membership/full_view.hpp"
#include "membership/partial_view.hpp"
#include "membership/scamp.hpp"
#include "scenario/failure_models.hpp"
#include "scenario/spec.hpp"

namespace gossip::scenario {

namespace {

/// Name -> factory table shared by every component family; make() resolves
/// a spec string and produces the component or a diagnostic listing the
/// registered names.
template <typename T>
class Registry {
 public:
  using Factory = std::function<T(const std::vector<std::string>&)>;

  Registry(std::string kind,
           std::initializer_list<std::pair<const std::string, Factory>> init)
      : kind_(std::move(kind)), factories_(init) {}

  [[nodiscard]] T make(const std::string& spec) const {
    const ComponentSpec parsed = parse_component(spec);
    const auto it = factories_.find(parsed.head);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [name, factory] : factories_) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      const std::string suggestion = nearest_name(parsed.head, names());
      throw std::invalid_argument(
          "unknown " + kind_ + " component '" + parsed.head + "' in \"" +
          spec + "\"" +
          (suggestion.empty() ? "" : " (did you mean '" + suggestion + "'?)") +
          "; known: " + known);
    }
    try {
      return it->second(parsed.args);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(kind_ + " \"" + spec + "\": " + e.what());
    }
  }

  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;
  }

 private:
  std::string kind_;
  std::map<std::string, Factory> factories_;
};

void expect_args(const std::vector<std::string>& args, std::size_t lo,
                 std::size_t hi) {
  if (args.size() < lo || args.size() > hi) {
    throw std::invalid_argument(
        lo == hi ? "expects " + std::to_string(lo) + " argument(s), got " +
                       std::to_string(args.size())
                 : "expects " + std::to_string(lo) + ".." +
                       std::to_string(hi) + " arguments, got " +
                       std::to_string(args.size()));
  }
}

double arg_double(const std::vector<std::string>& args, std::size_t i,
                  const char* what) {
  return to_double(args.at(i), what);
}

std::int64_t arg_int(const std::vector<std::string>& args, std::size_t i,
                     const char* what) {
  const double v = to_double(args.at(i), what);
  const auto k = static_cast<std::int64_t>(v);
  if (static_cast<double>(k) != v) {
    throw std::invalid_argument(std::string(what) + ": expected an integer");
  }
  return k;
}

const Registry<core::DegreeDistributionPtr>& fanout_registry() {
  static const Registry<core::DegreeDistributionPtr> registry(
      "fanout",
      {
          {"poisson",
           [](const auto& args) {
             expect_args(args, 1, 1);
             return core::poisson_fanout(arg_double(args, 0, "mean"));
           }},
          {"fixed",
           [](const auto& args) {
             expect_args(args, 1, 1);
             return core::fixed_fanout(arg_int(args, 0, "k"));
           }},
          {"binomial",
           [](const auto& args) {
             expect_args(args, 2, 2);
             return core::binomial_fanout(arg_int(args, 0, "trials"),
                                          arg_double(args, 1, "p"));
           }},
          {"geometric",
           [](const auto& args) {
             expect_args(args, 1, 1);
             return core::geometric_fanout(arg_double(args, 0, "mean"));
           }},
          {"zipf",
           [](const auto& args) {
             expect_args(args, 2, 2);
             return core::zipf_fanout(arg_int(args, 0, "max_value"),
                                      arg_double(args, 1, "exponent"));
           }},
          {"uniform",
           [](const auto& args) {
             expect_args(args, 2, 2);
             return core::uniform_fanout(arg_int(args, 0, "lo"),
                                         arg_int(args, 1, "hi"));
           }},
          {"empirical",
           [](const auto& args) {
             if (args.empty()) {
               throw std::invalid_argument("expects >= 1 weight");
             }
             std::vector<double> weights;
             weights.reserve(args.size());
             for (std::size_t i = 0; i < args.size(); ++i) {
               weights.push_back(arg_double(args, i, "weight"));
             }
             return core::empirical_fanout(std::move(weights));
           }},
      });
  return registry;
}

const Registry<net::LatencyModelPtr>& latency_registry() {
  static const Registry<net::LatencyModelPtr> registry(
      "latency",
      {
          {"constant",
           [](const auto& args) {
             expect_args(args, 1, 1);
             return net::constant_latency(arg_double(args, 0, "delay"));
           }},
          {"uniform",
           [](const auto& args) {
             expect_args(args, 2, 2);
             return net::uniform_latency(arg_double(args, 0, "lo"),
                                         arg_double(args, 1, "hi"));
           }},
          {"exponential",
           [](const auto& args) {
             expect_args(args, 1, 1);
             return net::exponential_latency(arg_double(args, 0, "mean"));
           }},
          {"lognormal",
           [](const auto& args) {
             expect_args(args, 2, 2);
             return net::lognormal_latency(arg_double(args, 0, "mu"),
                                           arg_double(args, 1, "sigma"));
           }},
      });
  return registry;
}

ChurnEvent parse_churn_event(const std::string& text) {
  const auto at = text.find('@');
  const auto colon = text.find(':', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || colon == std::string::npos) {
    throw std::invalid_argument("churn event needs kind@time:fraction, got '" +
                                text + "'");
  }
  const std::string kind = text.substr(0, at);
  ChurnEvent event;
  if (kind == "crash") {
    event.kind = ChurnKind::kCrash;
  } else if (kind == "join") {
    event.kind = ChurnKind::kJoin;
  } else if (kind == "lease") {
    event.kind = ChurnKind::kLease;
  } else {
    throw std::invalid_argument(
        "churn event kind must be crash, join, or lease: '" + text + "'");
  }
  event.time = to_double(text.substr(at + 1, colon - at - 1), "churn time");
  event.fraction = to_double(text.substr(colon + 1), "churn fraction");
  return event;
}

const Registry<FailureConfig>& failure_registry() {
  static const Registry<FailureConfig> registry(
      "failure",
      {
          {"none",
           [](const auto& args) {
             expect_args(args, 0, 0);
             return FailureConfig{};
           }},
          {"crash",
           [](const auto& args) {
             expect_args(args, 1, 1);
             const double fraction = arg_double(args, 0, "crash fraction");
             if (!(fraction >= 0.0 && fraction < 1.0)) {
               throw std::invalid_argument(
                   "crash fraction must be in [0, 1): the model requires "
                   "some non-failed members");
             }
             FailureConfig config;
             config.nonfailed_ratio = 1.0 - fraction;
             return config;
           }},
          {"midrun_crash",
           [](const auto& args) {
             expect_args(args, 1, 3);
             if (args.size() == 2) {
               throw std::invalid_argument(
                   "midrun_crash takes (fraction) or (fraction, lo, hi)");
             }
             FailureConfig config;
             config.midrun_fraction = arg_double(args, 0, "midrun fraction");
             if (!(config.midrun_fraction >= 0.0 &&
                   config.midrun_fraction <= 1.0)) {
               throw std::invalid_argument(
                   "midrun fraction must be in [0, 1]");
             }
             if (args.size() == 3) {
               config.midrun_time = net::uniform_latency(
                   arg_double(args, 1, "window lo"),
                   arg_double(args, 2, "window hi"));
             }
             return config;
           }},
          {"churn",
           [](const auto& args) {
             if (args.empty()) {
               throw std::invalid_argument("expects >= 1 event");
             }
             std::vector<ChurnEvent> events;
             events.reserve(args.size());
             for (const auto& arg : args) {
               events.push_back(parse_churn_event(arg));
             }
             FailureConfig config;
             config.schedule = churn_schedule(std::move(events));
             return config;
           }},
          {"targeted",
           [](const auto& args) {
             expect_args(args, 2, 2);
             const double fraction = arg_double(args, 0, "kill fraction");
             TargetedMode mode;
             if (args[1] == "hubs") {
               mode = TargetedMode::kHubs;
             } else if (args[1] == "leaves") {
               mode = TargetedMode::kLeaves;
             } else {
               throw std::invalid_argument(
                   "targeted mode must be hubs or leaves, got '" + args[1] +
                   "'");
             }
             FailureConfig config;
             config.schedule = targeted_kill_schedule(fraction, mode);
             return config;
           }},
          {"kill_hottest_forwarder",
           [](const auto& args) {
             expect_args(args, 2, 2);
             FailureConfig config;
             config.schedule = hottest_forwarder_kill_schedule(
                 arg_double(args, 0, "kill fraction"),
                 arg_double(args, 1, "kill time"));
             return config;
           }},
          {"regional_outage",
           [](const auto& args) {
             expect_args(args, 2, 3);
             const auto clusters = arg_int(args, 0, "clusters");
             const auto outages = arg_int(args, 1, "outages");
             if (clusters < 0 || outages < 0) {
               throw std::invalid_argument(
                   "regional_outage counts must be >= 0");
             }
             const double at =
                 args.size() > 2 ? arg_double(args, 2, "outage time") : 0.0;
             FailureConfig config;
             config.schedule = regional_outage_schedule(
                 static_cast<std::uint32_t>(clusters),
                 static_cast<std::uint32_t>(outages), at);
             return config;
           }},
          {"bursty_loss",
           [](const auto& args) {
             expect_args(args, 3, 5);
             BurstyLossParams params;
             params.burst_loss = arg_double(args, 0, "burst loss");
             params.burst_start = arg_double(args, 1, "burst start");
             params.burst_length = arg_double(args, 2, "burst length");
             if (args.size() > 3) {
               params.link_fraction = arg_double(args, 3, "link fraction");
             }
             if (args.size() > 4) {
               params.base_loss = arg_double(args, 4, "base loss");
             }
             FailureConfig config;
             config.schedule = bursty_loss_schedule(params);
             return config;
           }},
      });
  return registry;
}

}  // namespace

ComponentSpec parse_component(const std::string& text) {
  ComponentSpec spec;
  const std::string trimmed = trim(text);
  if (trimmed.empty()) {
    throw std::invalid_argument("empty component spec");
  }
  const auto open = trimmed.find('(');
  if (open == std::string::npos) {
    spec.head = trimmed;
    return spec;
  }
  if (trimmed.back() != ')') {
    throw std::invalid_argument("component spec missing ')': " + text);
  }
  spec.head = trimmed.substr(0, open);
  if (spec.head.empty()) {
    throw std::invalid_argument("component spec missing a name: " + text);
  }
  const std::string inner =
      trimmed.substr(open + 1, trimmed.size() - open - 2);
  spec.args = split_top_level(inner, ',');
  for (const auto& arg : spec.args) {
    if (arg.empty()) {
      throw std::invalid_argument("component spec has an empty argument: " +
                                  text);
    }
  }
  return spec;
}

core::DegreeDistributionPtr make_fanout(const std::string& spec) {
  return fanout_registry().make(spec);
}

std::vector<std::string> fanout_names() { return fanout_registry().names(); }

net::LatencyModelPtr make_latency(const std::string& spec) {
  return latency_registry().make(spec);
}

std::vector<std::string> latency_names() {
  return latency_registry().names();
}

membership::MembershipProviderPtr make_membership(const std::string& spec,
                                                  std::uint32_t num_nodes,
                                                  rng::RngStream rng) {
  const ComponentSpec parsed = parse_component(spec);
  if (parsed.head == "full") {
    expect_args(parsed.args, 0, 0);
    return membership::full_membership(num_nodes);
  }
  if (parsed.head == "uniform") {
    expect_args(parsed.args, 1, 1);
    const auto view_size = static_cast<std::size_t>(
        to_u64(parsed.args[0], "membership view_size"));
    return membership::uniform_partial_membership(num_nodes, view_size, rng);
  }
  if (parsed.head == "scamp") {
    expect_args(parsed.args, 1, 2);
    membership::ScampParams params;
    params.num_nodes = num_nodes;
    params.redundancy = to_u32(parsed.args[0], "scamp redundancy");
    if (parsed.args.size() > 1) {
      params.max_forward_hops = to_u32(parsed.args[1], "scamp max hops");
    }
    return membership::scamp_membership(params, rng);
  }
  if (parsed.head == "scamp-churn") {
    throw std::invalid_argument(
        "'scamp-churn' is a live dynamics model, not a static view; set "
        "membership.dynamics = " +
        spec + " instead");
  }
  const std::string suggestion = nearest_name(parsed.head, membership_names());
  throw std::invalid_argument(
      "unknown membership component '" + parsed.head + "' in \"" + spec +
      "\"" +
      (suggestion.empty() ? "" : " (did you mean '" + suggestion + "'?)") +
      "; known: full, scamp, uniform");
}

std::vector<std::string> membership_names() {
  return {"full", "scamp", "uniform"};
}

membership::MembershipDynamicsFactoryPtr make_dynamics(
    const std::string& spec, std::uint32_t num_nodes) {
  const ComponentSpec parsed = parse_component(spec);
  if (parsed.head == "none") {
    expect_args(parsed.args, 0, 0);
    return nullptr;
  }
  if (parsed.head == "scamp-churn") {
    expect_args(parsed.args, 0, 2);
    membership::ScampParams params;
    params.num_nodes = num_nodes;
    if (!parsed.args.empty()) {
      params.redundancy = to_u32(parsed.args[0], "scamp-churn redundancy");
    }
    if (parsed.args.size() > 1) {
      params.max_forward_hops =
          to_u32(parsed.args[1], "scamp-churn max hops");
    }
    return membership::scamp_dynamics_factory(params);
  }
  const std::string suggestion = nearest_name(parsed.head, dynamics_names());
  throw std::invalid_argument(
      "unknown membership dynamics '" + parsed.head + "' in \"" + spec +
      "\"" +
      (suggestion.empty() ? "" : " (did you mean '" + suggestion + "'?)") +
      "; known: none, scamp-churn");
}

std::vector<std::string> dynamics_names() { return {"none", "scamp-churn"}; }

FailureConfig make_failure(const std::string& spec) {
  const auto parts = split_top_level(spec, '+');
  if (parts.empty()) {
    throw std::invalid_argument("empty failure spec");
  }
  FailureConfig merged;
  std::vector<protocol::FailureSchedulePtr> schedules;
  for (const auto& part : parts) {
    FailureConfig config = failure_registry().make(part);
    merged.nonfailed_ratio *= config.nonfailed_ratio;
    if (config.midrun_fraction > 0.0) {
      if (merged.midrun_fraction > 0.0) {
        throw std::invalid_argument(
            "failure \"" + spec + "\": at most one midrun_crash part");
      }
      merged.midrun_fraction = config.midrun_fraction;
      merged.midrun_time = config.midrun_time;
    }
    if (config.schedule) schedules.push_back(std::move(config.schedule));
  }
  if (schedules.size() == 1) {
    merged.schedule = std::move(schedules.front());
  } else if (schedules.size() > 1) {
    merged.schedule = composite_schedule(std::move(schedules));
  }
  return merged;
}

std::vector<std::string> failure_names() {
  return failure_registry().names();
}

}  // namespace gossip::scenario
