#include "scenario/spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace gossip::scenario {

namespace {

bool is_identifier(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (const char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

/// Field keys are dot-separated identifiers: "n", "workload.messages".
bool is_field_key(const std::string& s) {
  std::size_t start = 0;
  while (true) {
    const auto dot = s.find('.', start);
    const std::string segment =
        s.substr(start, dot == std::string::npos ? dot : dot - start);
    if (!is_identifier(segment)) return false;
    if (dot == std::string::npos) return true;
    start = dot + 1;
  }
}

/// Expands one sweep token: either a literal value or range(lo, hi, step)
/// producing lo, lo+step, ... up to hi (within half a step of slack, like
/// experiment::arange_inclusive).
void expand_sweep_token(const std::string& token,
                        std::vector<std::string>& out) {
  if (token.rfind("range(", 0) != 0) {
    out.push_back(token);
    return;
  }
  if (token.back() != ')') {
    throw std::invalid_argument("sweep range missing ')': " + token);
  }
  const auto args =
      split_top_level(token.substr(6, token.size() - 7), ',');
  if (args.size() != 3) {
    throw std::invalid_argument("sweep range needs (lo, hi, step): " + token);
  }
  const double lo = to_double(args[0], "range lo");
  const double hi = to_double(args[1], "range hi");
  const double step = to_double(args[2], "range step");
  if (!(step > 0.0) || hi < lo) {
    throw std::invalid_argument("sweep range requires lo <= hi, step > 0: " +
                                token);
  }
  for (int k = 0;; ++k) {
    const double v = lo + static_cast<double>(k) * step;
    if (v > hi + 0.5 * step) break;
    out.push_back(format_compact(v));
  }
}

/// Substitutes $var references from `bindings` into `value`; "$$" escapes
/// a literal dollar sign.
std::string substitute(const std::string& value,
                       const std::map<std::string, std::string>& bindings,
                       const std::string& field) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size();) {
    if (value[i] != '$') {
      out.push_back(value[i]);
      ++i;
      continue;
    }
    if (i + 1 < value.size() && value[i + 1] == '$') {
      out.push_back('$');
      i += 2;
      continue;
    }
    std::size_t j = i + 1;
    while (j < value.size() &&
           (std::isalnum(static_cast<unsigned char>(value[j])) ||
            value[j] == '_')) {
      ++j;
    }
    const std::string var = value.substr(i + 1, j - i - 1);
    const auto it = bindings.find(var);
    if (var.empty() || it == bindings.end()) {
      throw std::invalid_argument("unknown sweep variable '$" + var +
                                  "' in field '" + field + "'");
    }
    out += it->second;
    i = j;
  }
  return out;
}

/// The text format cannot represent comment markers or line breaks inside
/// a value, so reject them at composition time rather than corrupting
/// format() output.
void require_representable(const std::string& value, const std::string& what) {
  if (value.find_first_of("#\n\r") != std::string::npos) {
    throw std::invalid_argument(what +
                                " must not contain '#' or line breaks: '" +
                                value + "'");
  }
}

std::string make_label(const std::vector<Binding>& bindings) {
  if (bindings.empty()) return "-";
  std::string label;
  for (const auto& [var, value] : bindings) {
    if (!label.empty()) label += ',';
    label += var + "=" + value;
  }
  return label;
}

}  // namespace

ScenarioSpec& ScenarioSpec::set(const std::string& key,
                                const std::string& value) {
  // Normalize exactly as parse() would, so parse(format()) stays an exact
  // round-trip for programmatic specs too.
  const std::string k = trim(key);
  const std::string v = trim(value);
  if (!is_field_key(k)) {
    throw std::invalid_argument(
        "scenario field key must be dot-separated identifiers: '" + k + "'");
  }
  if (k == "case") {
    throw std::invalid_argument(
        "'case' is reserved for explicit grid points; use add_case()");
  }
  if (k.rfind("sweep.", 0) == 0) {
    throw std::invalid_argument(
        "'sweep.' keys are reserved for sweep axes; use add_axis()");
  }
  if (v.empty()) {
    throw std::invalid_argument("empty value for field '" + k + "'");
  }
  require_representable(v, "field '" + k + "'");
  fields_[k] = v;
  return *this;
}

ScenarioSpec& ScenarioSpec::add_axis(std::string var,
                                     std::vector<std::string> values) {
  var = trim(var);
  if (!is_identifier(var)) {
    throw std::invalid_argument("sweep variable must be an identifier: '" +
                                var + "'");
  }
  if (values.empty()) {
    throw std::invalid_argument("sweep axis '" + var + "' has no values");
  }
  for (auto& value : values) {
    value = trim(value);
    if (value.empty()) {
      throw std::invalid_argument("sweep axis '" + var +
                                  "' has an empty value");
    }
    require_representable(value, "sweep axis '" + var + "' value");
  }
  for (const auto& axis : axes_) {
    if (axis.var == var) {
      throw std::invalid_argument("duplicate sweep axis '" + var + "'");
    }
  }
  axes_.push_back(SweepAxis{std::move(var), std::move(values)});
  return *this;
}

ScenarioSpec& ScenarioSpec::add_case(std::vector<Binding> bindings) {
  if (bindings.empty()) {
    throw std::invalid_argument("scenario case needs at least one binding");
  }
  for (auto& [var, value] : bindings) {
    var = trim(var);
    value = trim(value);
    if (!is_identifier(var)) {
      throw std::invalid_argument("case binding var must be an identifier: '" +
                                  var + "'");
    }
    if (value.empty()) {
      throw std::invalid_argument("case binding '" + var +
                                  "' has an empty value");
    }
    require_representable(value, "case binding '" + var + "'");
  }
  cases_.push_back(std::move(bindings));
  return *this;
}

bool ScenarioSpec::has(const std::string& key) const {
  return fields_.find(key) != fields_.end();
}

std::string ScenarioSpec::get(const std::string& key,
                              const std::string& fallback) const {
  const auto it = fields_.find(key);
  return it == fields_.end() ? fallback : it->second;
}

std::vector<ResolvedCase> ScenarioSpec::expand_cases() const {
  if (!axes_.empty() && !cases_.empty()) {
    throw std::invalid_argument(
        "scenario '" + name() +
        "' declares both sweep axes and explicit cases; use one or the other");
  }

  std::vector<std::vector<Binding>> grid;
  if (!cases_.empty()) {
    grid = cases_;
  } else {
    grid.emplace_back();  // the axis-free single case
    for (const auto& axis : axes_) {
      std::vector<std::vector<Binding>> next;
      next.reserve(grid.size() * axis.values.size());
      for (const auto& partial : grid) {
        for (const auto& value : axis.values) {
          auto extended = partial;
          extended.emplace_back(axis.var, value);
          next.push_back(std::move(extended));
        }
      }
      grid = std::move(next);
    }
  }

  std::vector<ResolvedCase> resolved;
  resolved.reserve(grid.size());
  for (const auto& bindings : grid) {
    ResolvedCase c;
    c.index = resolved.size();
    c.bindings = bindings;
    c.label = make_label(bindings);
    std::map<std::string, std::string> lookup(bindings.begin(),
                                              bindings.end());
    for (const auto& [key, value] : fields_) {
      c.fields[key] = substitute(value, lookup, key);
    }
    resolved.push_back(std::move(c));
  }
  return resolved;
}

std::string ScenarioSpec::format() const {
  std::ostringstream os;
  if (has("name")) os << "name = " << name() << "\n";
  for (const auto& [key, value] : fields_) {
    if (key == "name") continue;
    os << key << " = " << value << "\n";
  }
  for (const auto& axis : axes_) {
    os << "sweep." << axis.var << " = ";
    for (std::size_t i = 0; i < axis.values.size(); ++i) {
      if (i > 0) os << ", ";
      os << axis.values[i];
    }
    os << "\n";
  }
  for (const auto& bindings : cases_) {
    os << "case = ";
    for (std::size_t i = 0; i < bindings.size(); ++i) {
      if (i > 0) os << ", ";
      os << bindings[i].first << "=" << bindings[i].second;
    }
    os << "\n";
  }
  return os.str();
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    throw std::invalid_argument("scenario spec line " +
                                std::to_string(line_no) + ": " + message);
  };
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail("expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail("empty key");
    if (value.empty()) fail("empty value for '" + key + "'");

    try {
      if (key.rfind("sweep.", 0) == 0) {
        const std::string var = key.substr(6);
        std::vector<std::string> values;
        for (const auto& token : split_top_level(value, ',')) {
          expand_sweep_token(token, values);
        }
        spec.add_axis(var, std::move(values));
      } else if (key == "case") {
        std::vector<Binding> bindings;
        for (const auto& piece : split_top_level(value, ',')) {
          const auto beq = piece.find('=');
          if (beq == std::string::npos) {
            fail("case binding needs var=value: '" + piece + "'");
          }
          const std::string var = trim(piece.substr(0, beq));
          const std::string bval = trim(piece.substr(beq + 1));
          if (!is_identifier(var) || bval.empty()) {
            fail("bad case binding: '" + piece + "'");
          }
          bindings.emplace_back(var, bval);
        }
        spec.add_case(std::move(bindings));
      } else {
        if (spec.has(key)) fail("duplicate field '" + key + "'");
        spec.set(key, value);
      }
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      if (what.rfind("scenario spec line", 0) == 0) throw;
      fail(what);
    }
  }
  return spec;
}

ScenarioSpec ScenarioSpec::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read scenario spec: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string trim(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string format_compact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::vector<std::string> split_top_level(const std::string& text, char sep) {
  std::vector<std::string> pieces;
  std::string current;
  int depth = 0;
  for (const char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == sep && depth == 0) {
      pieces.push_back(trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const std::string last = trim(current);
  if (!last.empty() || !pieces.empty()) pieces.push_back(last);
  if (pieces.size() == 1 && pieces[0].empty()) pieces.clear();
  return pieces;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Single-row dynamic program; the inputs here are short key names.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

std::string nearest_name(const std::string& name,
                         const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_distance = 0;
  for (const auto& candidate : candidates) {
    const std::size_t d = edit_distance(name, candidate);
    if (best.empty() || d < best_distance) {
      best = candidate;
      best_distance = d;
    }
  }
  const std::size_t cutoff = std::max<std::size_t>(2, name.size() / 3);
  return best_distance <= cutoff ? best : "";
}

// Numeric field parsing goes through std::from_chars: locale-independent
// (std::stod honors LC_NUMERIC, so "3.5" silently truncated to 3 under a
// comma-decimal locale), and the end pointer makes the full-token check
// exact — every character of the value must be consumed, so "4abc" or
// "1.5.2" is an error, never a silent prefix parse.

double to_double(const std::string& text, const std::string& what) {
  const std::string t = trim(text);
  const char* first = t.data();
  const char* last = t.data() + t.size();
  if (first != last && *first == '+') ++first;  // from_chars rejects '+'
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument(what + ": magnitude out of double range: '" +
                                text + "'");
  }
  if (ec != std::errc{} || first == last) {
    throw std::invalid_argument(what + ": not a number: '" + text + "'");
  }
  if (ptr != last) {
    throw std::invalid_argument(what + ": trailing characters in '" + text +
                                "'");
  }
  return value;
}

std::uint64_t to_u64(const std::string& text, const std::string& what) {
  const std::string t = trim(text);
  const char* first = t.data();
  const char* last = t.data() + t.size();
  if (first != last && *first == '+') ++first;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument(what + ": value out of 64-bit range: '" +
                                text + "'");
  }
  // from_chars<unsigned> rejects '-' outright, so "-1" lands here too.
  if (ec != std::errc{} || first == last) {
    throw std::invalid_argument(what + ": not an unsigned integer: '" + text +
                                "'");
  }
  if (ptr != last) {
    throw std::invalid_argument(what + ": trailing characters in '" + text +
                                "'");
  }
  return value;
}

std::uint32_t to_u32(const std::string& text, const std::string& what) {
  const std::uint64_t value = to_u64(text, what);
  if (value > 0xffffffffULL) {
    throw std::invalid_argument(what + ": value out of 32-bit range: '" +
                                text + "'");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace gossip::scenario
