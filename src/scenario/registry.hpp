#pragma once

/// \file registry.hpp
/// Component registries: the mapping from a spec string like
/// "poisson(4.0)", "scamp(2)", "lognormal(0,0.5)", or
/// "crash(0.1)+bursty_loss(0.8,2,3,0.5)" to a constructed component. Every
/// existing family — core fanout distributions, membership views, net
/// latency models — plus the scenario failure models is reachable from
/// text, which is what makes scenario files self-contained. Unknown
/// component names throw std::invalid_argument listing the known names.

#include <cstdint>
#include <string>
#include <vector>

#include "core/degree_distribution.hpp"
#include "membership/dynamics.hpp"
#include "membership/view.hpp"
#include "net/latency.hpp"
#include "protocol/failure_schedule.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::scenario {

/// A parsed "head(arg1, arg2, ...)" spec string; "head" alone means no
/// arguments. Arguments are trimmed and split at parenthesis depth 0.
struct ComponentSpec {
  std::string head;
  std::vector<std::string> args;
};

/// Parses a component spec string; throws on empty/malformed input.
[[nodiscard]] ComponentSpec parse_component(const std::string& text);

/// Fanout distributions P. Known: poisson(z), fixed(k), binomial(trials,p),
/// geometric(mean), zipf(max,s), uniform(lo,hi), empirical(w0,w1,...).
[[nodiscard]] core::DegreeDistributionPtr make_fanout(const std::string& spec);
[[nodiscard]] std::vector<std::string> fanout_names();

/// Latency models. Known: constant(d), uniform(lo,hi), exponential(mean),
/// lognormal(mu,sigma).
[[nodiscard]] net::LatencyModelPtr make_latency(const std::string& spec);
[[nodiscard]] std::vector<std::string> latency_names();

/// Membership views. Known: full, uniform(view_size), scamp(c) /
/// scamp(c,max_hops). Partial views are built once per scenario case from
/// the supplied stream, so view construction randomness is reproducible.
[[nodiscard]] membership::MembershipProviderPtr make_membership(
    const std::string& spec, std::uint32_t num_nodes, rng::RngStream rng);
[[nodiscard]] std::vector<std::string> membership_names();

/// Live membership dynamics (the `membership.dynamics =` spec key). Known:
/// none (returns nullptr: gossip over the static `membership` view) and
/// scamp-churn / scamp-churn(c) / scamp-churn(c,max_hops) — evolving SCAMP
/// views co-simulated with the failure schedule's churn clock. Each
/// execution instantiates its own views from the returned factory.
[[nodiscard]] membership::MembershipDynamicsFactoryPtr make_dynamics(
    const std::string& spec, std::uint32_t num_nodes);
[[nodiscard]] std::vector<std::string> dynamics_names();

/// How a parsed failure spec materializes onto protocol::GossipParams. The
/// paper's static crash fraction and the midrun-crash extension map onto the
/// protocol's native fields (preserving their exact sampling paths); richer
/// models arrive as a FailureSchedule.
struct FailureConfig {
  double nonfailed_ratio = 1.0;
  double midrun_fraction = 0.0;
  net::LatencyModelPtr midrun_time;  ///< Null = protocol default window.
  protocol::FailureSchedulePtr schedule;
};

/// Failure models, composable with '+', e.g. "crash(0.1)+churn(crash@2:0.2)".
/// Known parts: none, crash(f), midrun_crash(frac) /
/// midrun_crash(frac,lo,hi), churn(crash@t:frac, join@t:frac,
/// lease@t:frac, ...), targeted(frac,hubs|leaves),
/// kill_hottest_forwarder(frac,t), and
/// bursty_loss(p,start,len[,link_frac[,base]]). Static crash fractions
/// multiply; at most one midrun_crash part; multiple schedule parts
/// compose in order.
[[nodiscard]] FailureConfig make_failure(const std::string& spec);
[[nodiscard]] std::vector<std::string> failure_names();

}  // namespace gossip::scenario
