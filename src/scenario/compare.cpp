#include "scenario/compare.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace gossip::scenario {
namespace {

// Inverse of experiment::CsvWriter's RFC 4180 quoting: case labels carry
// embedded commas ("z=4.0,f=0.1"), so quoted cells with doubled quotes
// must round-trip. Embedded line breaks are not handled — the writer only
// ever quotes commas/quotes within single-line cells.
std::vector<std::string> split_row(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
        cell += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

struct CsvTable {
  std::vector<std::string> header;
  // key -> column name -> cell text
  std::map<std::string, std::map<std::string, std::string>> rows;
};

CsvTable load_table(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("empty CSV: " + path);
  }
  CsvTable table;
  table.header = split_row(line);
  std::size_t scenario_col = table.header.size();
  std::size_t case_col = table.header.size();
  std::size_t metric_col = table.header.size();
  for (std::size_t c = 0; c < table.header.size(); ++c) {
    if (table.header[c] == "scenario") scenario_col = c;
    if (table.header[c] == "case") case_col = c;
    if (table.header[c] == "metric") metric_col = c;
  }
  if (scenario_col == table.header.size() ||
      case_col == table.header.size() ||
      metric_col == table.header.size()) {
    throw std::runtime_error(
        path + ": not a scenario results CSV (needs scenario/case/metric "
               "columns)");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto cells = split_row(line);
    if (cells.size() != table.header.size()) {
      throw std::runtime_error(path + ": ragged row: " + line);
    }
    const std::string key = cells[scenario_col] + " / " + cells[case_col] +
                            " / " + cells[metric_col];
    auto& row = table.rows[key];
    for (std::size_t c = 0; c < cells.size(); ++c) {
      row[table.header[c]] = cells[c];
    }
  }
  return table;
}

bool parse_cell(const std::string& text, double* out) {
  if (text.empty()) return false;
  std::size_t used = 0;
  try {
    *out = std::stod(text, &used);
  } catch (const std::exception&) {
    return false;
  }
  return used == text.size() && std::isfinite(*out);
}

}  // namespace

CompareReport compare_result_csvs(const std::string& path_a,
                                  const std::string& path_b,
                                  const CompareOptions& options) {
  // Column families and their tolerance semantics. seed / replications /
  // backend are identity metadata, not measurements — two runs may differ
  // there on purpose, so they are not compared.
  static const std::pair<const char*, char> kColumns[] = {
      {"reliability_mean", 'a'},   {"reliability_ci_lo", 'a'},
      {"reliability_ci_hi", 'a'},  {"success_rate", 'a'},
      {"msg_reliability_min", 'a'}, {"meanfield_reliability", 'a'},
      {"abs_diff", 'a'},           {"messages_mean", 'r'},
      {"completion_mean", 'r'},    {"midrun_crashes_mean", 'r'},
      {"msg_latency_mean", 'r'},
  };

  const CsvTable a = load_table(path_a);
  const CsvTable b = load_table(path_b);

  CompareReport report;
  for (const auto& [key, row_b] : b.rows) {
    if (a.rows.find(key) == a.rows.end()) report.only_in_b.push_back(key);
  }
  for (const auto& [key, row_a] : a.rows) {
    const auto it = b.rows.find(key);
    if (it == b.rows.end()) {
      report.only_in_a.push_back(key);
      continue;
    }
    ++report.rows_compared;
    const auto& row_b = it->second;
    for (const auto& [column, family] : kColumns) {
      const auto cell_a = row_a.find(column);
      const auto cell_b = row_b.find(column);
      if (cell_a == row_a.end() || cell_b == row_b.end()) continue;
      double va = 0.0;
      double vb = 0.0;
      // A cell that is empty (or non-numeric) in either file is skipped:
      // some backends legitimately leave columns blank.
      if (!parse_cell(cell_a->second, &va) ||
          !parse_cell(cell_b->second, &vb)) {
        continue;
      }
      // Relative bands collapse to zero width when a value is exactly
      // 0.0 (they would flag 0 vs 1e-9 as a mismatch), so those cells
      // fall back to an absolute tolerance instead.
      double allowed = options.reliability_tolerance;
      if (family == 'r') {
        allowed = (va == 0.0 || vb == 0.0)
                      ? options.zero_absolute_tolerance
                      : options.relative_tolerance *
                            std::max(std::fabs(va), std::fabs(vb));
      }
      if (std::fabs(va - vb) > allowed) {
        report.diffs.push_back({key, column, va, vb, allowed});
      }
    }
  }
  return report;
}

void print_compare_report(std::ostream& os, const CompareReport& report) {
  for (const auto& key : report.only_in_a) {
    os << "only in A: " << key << "\n";
  }
  for (const auto& key : report.only_in_b) {
    os << "only in B: " << key << "\n";
  }
  for (const auto& diff : report.diffs) {
    os << "DIFF " << diff.key << " [" << diff.column << "]: " << diff.a
       << " vs " << diff.b << " (|delta| "
       << std::fabs(diff.a - diff.b) << " > allowed " << diff.allowed
       << ")\n";
  }
  if (report.rows_compared == 0) {
    os << "no common rows to compare\n";
  }
  os << (report.ok() ? "OK" : "MISMATCH") << ": " << report.rows_compared
     << " row(s) compared, " << report.diffs.size()
     << " out-of-tolerance cell(s), "
     << (report.only_in_a.size() + report.only_in_b.size())
     << " unmatched row(s)\n";
}

}  // namespace gossip::scenario
