#include "scenario/topology.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "graph/generators.hpp"

namespace gossip::scenario {

namespace {

membership::CsrAdjacencyPtr digraph_to_csr(const graph::Digraph& digraph) {
  auto csr = std::make_shared<membership::CsrAdjacency>();
  const std::uint32_t n = digraph.num_nodes();
  csr->offsets.resize(static_cast<std::size_t>(n) + 1, 0);
  csr->neighbors.reserve(digraph.num_edges());
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto nbrs = digraph.out_neighbors(v);
    csr->offsets[v + 1] = csr->offsets[v] + nbrs.size();
    csr->neighbors.insert(csr->neighbors.end(), nbrs.begin(), nbrs.end());
    csr->max_degree =
        std::max(csr->max_degree, static_cast<std::uint32_t>(nbrs.size()));
  }
  return csr;
}

}  // namespace

TopologyFamily parse_topology_family(const std::string& text) {
  if (text == "uniform") return TopologyFamily::kUniform;
  if (text == "er") return TopologyFamily::kEr;
  if (text == "ba") return TopologyFamily::kBa;
  if (text == "wan") return TopologyFamily::kWan;
  throw std::invalid_argument(
      "topology must be uniform, er, ba, or wan; got '" + text + "'");
}

std::string topology_family_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kUniform: return "uniform";
    case TopologyFamily::kEr: return "er";
    case TopologyFamily::kBa: return "ba";
    case TopologyFamily::kWan: return "wan";
  }
  return "unknown";
}

void validate_topology_config(const TopologyConfig& config,
                              std::uint32_t num_nodes) {
  if (config.has_p && !(config.p >= 0.0 && config.p <= 1.0)) {
    throw std::invalid_argument("topology.p must be in [0, 1]");
  }
  if (config.has_m && config.m == 0) {
    throw std::invalid_argument("topology.m must be >= 1");
  }
  if (config.has_clusters && config.clusters < 2) {
    throw std::invalid_argument("topology.clusters must be >= 2");
  }
  switch (config.family) {
    case TopologyFamily::kUniform:
      return;
    case TopologyFamily::kEr:
      if (!config.has_p) {
        throw std::invalid_argument("topology = er requires topology.p");
      }
      return;
    case TopologyFamily::kBa:
      if (!config.has_m) {
        throw std::invalid_argument("topology = ba requires topology.m");
      }
      if (config.m >= num_nodes) {
        throw std::invalid_argument("topology.m must be < n");
      }
      return;
    case TopologyFamily::kWan:
      if (!config.has_clusters || !config.has_bridge_edges) {
        throw std::invalid_argument(
            "topology = wan requires topology.clusters and "
            "topology.bridge_edges");
      }
      if (num_nodes < 2 * config.clusters) {
        throw std::invalid_argument(
            "topology = wan requires n >= 2 * topology.clusters");
      }
      if (config.bridge_edges < config.clusters) {
        throw std::invalid_argument(
            "topology.bridge_edges must be >= topology.clusters (the "
            "connectivity ring)");
      }
      return;
  }
  throw std::invalid_argument("unknown topology family");
}

membership::CsrAdjacencyPtr build_topology_adjacency(
    const TopologyConfig& config, std::uint32_t num_nodes,
    std::uint64_t seed) {
  validate_topology_config(config, num_nodes);
  auto rng = rng::RngStream(seed).substream(kTopologySalt);
  switch (config.family) {
    case TopologyFamily::kUniform:
      throw std::invalid_argument(
          "topology = uniform has no overlay to build");
    case TopologyFamily::kEr:
      return digraph_to_csr(
          graph::erdos_renyi(num_nodes, config.p, rng, /*directed=*/false));
    case TopologyFamily::kBa:
      return digraph_to_csr(graph::barabasi_albert(num_nodes, config.m, rng));
    case TopologyFamily::kWan: {
      graph::WanParams params;
      params.num_nodes = num_nodes;
      params.clusters = config.clusters;
      params.bridge_edges = config.bridge_edges;
      params.intra_probability = config.has_p ? config.p : 0.0;
      return digraph_to_csr(graph::wan_hierarchy(params, rng).graph);
    }
  }
  throw std::invalid_argument("unknown topology family");
}

}  // namespace gossip::scenario
