#pragma once

/// \file runner.hpp
/// ScenarioRunner: expands a ScenarioSpec's grid, builds every case through
/// the component registries, fans the replications out over a
/// parallel::ThreadPool, and aggregates the reliability/success metrics
/// with confidence intervals. Replication r of a case always draws from
/// RngStream(case seed).substream(r) — the same common-random-numbers
/// convention as the hand-written benches — so results are bit-identical
/// for any worker count, and sweep points are positively correlated for
/// sharper contrasts.

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "math/meanfield.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/spec.hpp"
#include "stats/ci.hpp"
#include "stats/summary.hpp"

namespace gossip::scenario {

/// Which execution engine evaluates a case (`backend =` field).
enum class Backend {
  kProtocol,   ///< Full message-level DES protocol; supports every failure
               ///< model, latency, membership, and loss knob.
  kGraph,      ///< Sampled gossip digraph + BFS (delivery metric); static
               ///< crash failures and edge thinning only.
  kComponent,  ///< Giant component of the percolated configuration graph —
               ///< the paper's own Section 5.1 measurement; static crashes.
  kFlat,       ///< Struct-of-arrays round engine (protocol/flat_gossip.hpp):
               ///< the paper's static-failure regime at million-node scale;
               ///< full view, unit latency, static crashes + i.i.d. loss.
};

/// Which evaluation engine answers a case (`engine =` field) — orthogonal
/// to the simulation backend. The analytic engine is the deterministic
/// mean-field model (math/meanfield.hpp) over the same parameter set; it
/// is restricted to the static-failure regime the model derives
/// (full view, unit latency, static crashes, i.i.d. loss — the flat
/// backend's constraint set) and predicts reliability conditional on the
/// cascade taking off.
enum class Engine {
  kMonteCarlo,  ///< Replicated simulation through the case's backend.
  kMeanField,   ///< Analytic prediction only; no replications run.
  kBoth,        ///< Simulation plus prediction, side by side, with the
                ///< absolute disagreement as an extra column.
};

/// Round-trace telemetry requested by the `trace =` key. Valid for the
/// protocol and flat backends (the round-structured engines); the
/// graph/component backends have no rounds and reject any trace request.
enum class TraceMode {
  kOff,       ///< No probes attached (default); zero added work.
  kCounters,  ///< Whole-run counter summaries only.
  kRounds,    ///< Counters plus the full per-round trajectory aggregates.
};

/// Cross-replication aggregate of one dissemination round: each summary
/// folds that round's value from every replication (rounds a replication
/// never reached contribute zero events and their held final informed
/// fraction, so every summary has count == replications).
struct RoundAggregate {
  stats::OnlineSummary frontier;
  stats::OnlineSummary sends;
  stats::OnlineSummary newly_informed;
  stats::OnlineSummary redundant;
  stats::OnlineSummary losses;
  stats::OnlineSummary dead_receipts;
  stats::OnlineSummary crashes;
  stats::OnlineSummary joins;
  stats::OnlineSummary lease_expiries;
  /// Cumulative informed members at the end of the round, divided by the
  /// replication's end-of-run alive count — the trajectory whose final
  /// value is the reliability in the static-crash regime.
  stats::OnlineSummary informed_fraction;
};

/// Aggregated outcome of one grid case.
struct CaseResult {
  std::string scenario;  ///< Spec name.
  std::string label;     ///< Resolved sweep bindings, e.g. "z=4.0,f=0.1".
  std::vector<Binding> bindings;
  Backend backend = Backend::kProtocol;
  Engine engine = Engine::kMonteCarlo;
  std::string metric = "reliability";
  /// Replications actually run: the spec's `repetitions` for the
  /// Monte-Carlo engines, 0 for a pure mean-field case (deterministic).
  std::size_t replications = 0;
  std::uint64_t seed = 0;

  /// Primary per-replication series: delivered fraction of non-failed
  /// members (protocol/graph) or the giant component's share (component);
  /// for multi-message workloads, the per-replication mean over messages.
  stats::OnlineSummary reliability;
  stats::OnlineSummary messages;         ///< Protocol/graph backends.
  stats::OnlineSummary completion_time;  ///< Protocol backend only.
  stats::OnlineSummary midrun_crashes;   ///< Protocol backend only.
  std::size_t success_count = 0;

  /// Trace aggregates (`trace =` key). Replication r's trace comes from the
  /// same substream(r) execution as its metrics — probes never consume
  /// randomness — so traced and untraced runs of one spec report identical
  /// metric summaries, and traces are bit-identical for any worker count.
  TraceMode trace = TraceMode::kOff;
  /// Per-round trajectory, indexed by round (0 = injection); sized to the
  /// longest replication. Empty unless trace = rounds.
  std::vector<RoundAggregate> round_trace;
  /// Whole-run counter summaries (one sample per replication). Present for
  /// trace = counters and trace = rounds.
  stats::OnlineSummary trace_rounds;          ///< Rounds to extinction.
  stats::OnlineSummary trace_sends;
  stats::OnlineSummary trace_redundant;
  stats::OnlineSummary trace_losses;
  stats::OnlineSummary trace_dead_receipts;
  stats::OnlineSummary trace_crashes;
  stats::OnlineSummary trace_joins;
  stats::OnlineSummary trace_lease_expiries;
  stats::OnlineSummary trace_informed_fraction;  ///< Final informed share.

  /// Analytic-engine outputs (`engine = meanfield | both`). The
  /// prediction is deterministic, so these are plain values, not
  /// summaries; `has_meanfield` gates the CSV columns.
  bool has_meanfield = false;
  double meanfield_reliability = 0.0;  ///< Conditional-on-take-off.
  double meanfield_messages = 0.0;     ///< Expected total sends.
  double meanfield_rounds = 0.0;       ///< Expected rounds to extinction.
  double meanfield_extinction = 0.0;   ///< Early-die-out probability.
  /// Analytic per-round trajectory (trace = rounds); written to the trace
  /// CSV with "meanfield" in the backend column so it sits next to the
  /// simulated aggregates without colliding with them.
  std::vector<meanfield::RoundPoint> meanfield_trace;

  /// Workload width (`workload.messages`); 1 for single-message cases and
  /// the graph/component backends.
  std::size_t workload_messages = 1;
  /// Per-message series, indexed by message: entry j aggregates message j's
  /// delivered fraction / mean first-receipt latency over the replications.
  /// Empty for the graph/component backends.
  std::vector<stats::OnlineSummary> per_message_reliability;
  std::vector<stats::OnlineSummary> per_message_latency;

  [[nodiscard]] double success_rate() const {
    return replications == 0 ? 0.0
                             : static_cast<double>(success_count) /
                                   static_cast<double>(replications);
  }
  [[nodiscard]] stats::Interval reliability_ci(
      double confidence = 0.95) const {
    return stats::mean_confidence_interval(reliability, confidence);
  }
  /// The spec's chosen headline number: mean reliability, or the success
  /// rate when `metric = success`.
  [[nodiscard]] double primary() const {
    return metric == "success" ? success_rate() : reliability.mean();
  }
  /// Absolute disagreement between the analytic prediction and the
  /// Monte-Carlo mean; meaningful for engine = both only (0 otherwise).
  [[nodiscard]] double abs_diff() const {
    return engine == Engine::kBoth && has_meanfield
               ? std::fabs(meanfield_reliability - reliability.mean())
               : 0.0;
  }
};

/// Wall-clock telemetry for one case (run-manifest input; the only
/// nondeterministic output of a run — everything in CaseResult is seeded).
struct CaseTelemetry {
  /// Per-replication wall seconds, indexed by replication.
  std::vector<double> replication_seconds;
  /// Summed replication seconds: the case's total compute time (under a
  /// pool this exceeds elapsed time; tasks overlap).
  double wall_seconds = 0.0;
};

struct RunTelemetry {
  double total_wall_seconds = 0.0;   ///< Elapsed time of the whole run().
  std::vector<CaseTelemetry> cases;  ///< Grid order, aligned with results.
};

class ScenarioRunner {
 public:
  /// `pool` may be null (serial); results never depend on the choice.
  explicit ScenarioRunner(parallel::ThreadPool* pool = nullptr)
      : pool_(pool) {}

  /// Runs every grid case of `spec`; results are in grid order. Throws
  /// std::invalid_argument on unknown fields, unknown components, or
  /// backend/feature combinations the backend cannot honor.
  [[nodiscard]] std::vector<CaseResult> run(const ScenarioSpec& spec) const;

  /// As above; additionally fills `telemetry` (ignored when null) with
  /// per-case wall-clock data for the run manifest.
  [[nodiscard]] std::vector<CaseResult> run(const ScenarioSpec& spec,
                                            RunTelemetry* telemetry) const;

 private:
  parallel::ThreadPool* pool_;
};

[[nodiscard]] std::string backend_name(Backend backend);
[[nodiscard]] std::string engine_name(Engine engine);
[[nodiscard]] std::string trace_mode_name(TraceMode mode);

/// The engine's full known-key set, sorted: the single source of truth for
/// spec validation and the CLI's --list-keys.
[[nodiscard]] std::vector<std::string> known_spec_keys();

/// Validates every field key of `spec` against the engine's known-key set
/// in one pass, BEFORE any case is built or run. Collects ALL unknown keys
/// and throws a single std::invalid_argument naming each one together with
/// its nearest valid key ("did you mean ...?"). ScenarioRunner::run calls
/// this first; the CLI calls it right after parsing so a typo fails before
/// any output is produced.
void validate_spec_keys(const ScenarioSpec& spec);

/// Writes one CSV row per case (scenario, case label, sweep bindings as a
/// resolved label, metrics with 95% CI). Used by the gossip_scenarios CLI.
void write_results_csv(const std::string& path,
                       const std::vector<CaseResult>& results);

/// Writes the per-round trajectories (cases with trace = rounds) as one CSV
/// row per (case, round): mean trajectory plus a 95% CI on the informed
/// fraction. Cases without round traces contribute no rows; an all-header
/// file is still written when none have them.
void write_trace_csv(const std::string& path,
                     const std::vector<CaseResult>& results);

/// Prints the results as the benches' fixed-width table format.
void print_results_table(std::ostream& os,
                         const std::vector<CaseResult>& results);

}  // namespace gossip::scenario
