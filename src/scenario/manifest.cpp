#include "scenario/manifest.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace gossip::scenario {

namespace {

/// Bin index of one replication time: 0 for sub-microsecond reps, else
/// 1 + floor(log2(microseconds)) — the [2^(k-1), 2^k) us bucket.
std::size_t log2us_bin(double seconds) {
  const double us = seconds * 1e6;
  if (!(us >= 1.0)) return 0;
  const auto whole = static_cast<std::uint64_t>(us);
  return static_cast<std::size_t>(std::bit_width(whole));
}

std::vector<std::uint64_t> log2us_histogram(
    const std::vector<double>& replication_seconds) {
  std::vector<std::uint64_t> bins;
  for (const double s : replication_seconds) {
    const std::size_t k = log2us_bin(s);
    if (k >= bins.size()) bins.resize(k + 1, 0);
    ++bins[k];
  }
  return bins;
}

}  // namespace

std::string spec_fingerprint(const ScenarioSpec& spec) {
  const std::uint64_t hash = obs::fnv1a64(spec.format());
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string("fnv1a64:") + hex;
}

obs::RunManifest build_run_manifest(const ScenarioSpec& spec,
                                    const std::vector<CaseResult>& results,
                                    const RunTelemetry& telemetry) {
  obs::RunManifest manifest;
  manifest.spec_name = spec.name();
  manifest.spec_hash = spec_fingerprint(spec);
  manifest.total_wall_seconds = telemetry.total_wall_seconds;
  manifest.peak_rss_bytes = obs::peak_rss_bytes();

  TraceMode widest = TraceMode::kOff;
  const bool aligned = telemetry.cases.size() == results.size();
  manifest.cases.reserve(results.size());
  for (std::size_t c = 0; c < results.size(); ++c) {
    const CaseResult& r = results[c];
    widest = std::max(widest, r.trace);
    obs::CaseManifest cm;
    cm.scenario = r.scenario;
    cm.label = r.label;
    cm.backend = backend_name(r.backend);
    cm.metric = r.metric;
    cm.seed = r.seed;
    cm.replications = r.replications;
    cm.primary = r.primary();
    cm.success_rate = r.success_rate();
    if (aligned) {
      const CaseTelemetry& tel = telemetry.cases[c];
      cm.wall_seconds = tel.wall_seconds;
      if (!tel.replication_seconds.empty()) {
        const auto [lo, hi] = std::minmax_element(
            tel.replication_seconds.begin(), tel.replication_seconds.end());
        cm.rep_seconds_min = *lo;
        cm.rep_seconds_max = *hi;
        cm.rep_seconds_mean =
            tel.wall_seconds /
            static_cast<double>(tel.replication_seconds.size());
        cm.rep_time_log2us = log2us_histogram(tel.replication_seconds);
      }
    }
    manifest.cases.push_back(std::move(cm));
  }
  manifest.trace_mode = trace_mode_name(widest);
  return manifest;
}

}  // namespace gossip::scenario
