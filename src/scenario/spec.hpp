#pragma once

/// \file spec.hpp
/// ScenarioSpec: a declarative description of one gossip experiment — group
/// size, source, fanout distribution, membership view, latency model,
/// failure model, metric, repetitions, seed — plus an optional parameter
/// grid. Specs parse from a simple key=value text format (one experiment
/// per file) and compose programmatically, so both spec files and the
/// migrated benches drive the same ScenarioRunner.
///
/// Text format, line oriented:
///
///     # comment
///     name    = fig4a
///     n       = 1000
///     fanout  = poisson($z)
///     failure = crash($f)
///     sweep.z = range(1.1, 6.7, 0.4), 4.0
///     sweep.f = 0.0, 0.1, 0.5, 0.9
///
/// Field keys are dot-separated identifiers (`workload.messages`,
/// `membership.dynamics`); the `sweep.` prefix and the `case` key remain
/// reserved for grid declarations.
///
/// `sweep.<var>` axes expand to their Cartesian product (first axis
/// slowest); `range(lo, hi, step)` tokens expand inline. Alternatively
/// explicit `case = z=4.0, f=0.1` lines enumerate exactly the grid points
/// to run (axes and cases are mutually exclusive). `$var` references in any
/// field are substituted per grid point; `$$` escapes a literal dollar.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace gossip::scenario {

/// One sweep variable binding, e.g. {"z", "4.0"}.
using Binding = std::pair<std::string, std::string>;

struct SweepAxis {
  std::string var;
  std::vector<std::string> values;
  [[nodiscard]] bool operator==(const SweepAxis&) const = default;
};

/// One fully resolved grid point: every field with $vars substituted.
struct ResolvedCase {
  std::size_t index = 0;
  std::string label;  ///< "z=4.0,f=0.1"; "-" when the spec has no grid.
  std::vector<Binding> bindings;
  std::map<std::string, std::string> fields;
};

class ScenarioSpec {
 public:
  /// Sets a field (last write wins); returns *this for chaining.
  ScenarioSpec& set(const std::string& key, const std::string& value);

  /// Appends a Cartesian sweep axis. Throws if `var` already has an axis.
  ScenarioSpec& add_axis(std::string var, std::vector<std::string> values);

  /// Appends one explicit grid point (mutually exclusive with axes).
  ScenarioSpec& add_case(std::vector<Binding> bindings);

  [[nodiscard]] bool has(const std::string& key) const;
  /// Raw (unsubstituted) field value, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::string name() const { return get("name", "scenario"); }

  [[nodiscard]] const std::map<std::string, std::string>& fields() const {
    return fields_;
  }
  [[nodiscard]] const std::vector<SweepAxis>& axes() const { return axes_; }
  [[nodiscard]] const std::vector<std::vector<Binding>>& cases() const {
    return cases_;
  }

  /// Expands the grid: axes' Cartesian product, or the explicit cases, or a
  /// single case when neither is declared. Throws on unknown $vars and when
  /// both axes and cases are present.
  [[nodiscard]] std::vector<ResolvedCase> expand_cases() const;

  /// Serializes to the text format; parse(format()) round-trips exactly.
  [[nodiscard]] std::string format() const;

  /// Parses the text format. Throws std::invalid_argument with a line
  /// number on malformed input (missing '=', duplicate keys, bad range).
  [[nodiscard]] static ScenarioSpec parse(const std::string& text);

  /// Reads and parses a spec file. Throws std::runtime_error if unreadable.
  [[nodiscard]] static ScenarioSpec load(const std::string& path);

  [[nodiscard]] bool operator==(const ScenarioSpec&) const = default;

 private:
  std::map<std::string, std::string> fields_;
  std::vector<SweepAxis> axes_;
  std::vector<std::vector<Binding>> cases_;
};

// ---- shared parsing helpers (also used by the component registries) ----

/// Splits on `sep` at parenthesis depth 0, trimming each piece; no empty
/// pieces are produced for an all-whitespace input.
[[nodiscard]] std::vector<std::string> split_top_level(const std::string& text,
                                                       char sep);

/// Strips leading/trailing whitespace.
[[nodiscard]] std::string trim(const std::string& text);

/// Shortest decimal form (%g): readable grid labels and component names.
[[nodiscard]] std::string format_compact(double value);

/// Levenshtein edit distance with unit insert/delete/substitute costs.
[[nodiscard]] std::size_t edit_distance(const std::string& a,
                                        const std::string& b);

/// The candidate closest to `name` by edit distance (ties break toward the
/// lexicographically first candidate), or "" when even the best candidate
/// is further than max(2, |name| / 3) — too far to plausibly be a typo.
/// Powers the "did you mean ...?" diagnostics for unknown spec keys and
/// unknown registry components.
[[nodiscard]] std::string nearest_name(
    const std::string& name, const std::vector<std::string>& candidates);

/// Strict full-string numeric parses; `what` names the value in errors.
[[nodiscard]] double to_double(const std::string& text,
                               const std::string& what);
[[nodiscard]] std::uint64_t to_u64(const std::string& text,
                                   const std::string& what);
[[nodiscard]] std::uint32_t to_u32(const std::string& text,
                                   const std::string& what);

}  // namespace gossip::scenario
