#pragma once

/// \file failure_models.hpp
/// The FailureSchedule family behind the scenario engine's `failure =` spec
/// strings. The paper's static crash fraction stays on the protocol's
/// native nonfailed_ratio path (exactly Section 4.1); these schedules add
/// the regimes the static model cannot express: timed churn traces
/// (crash/join events at virtual times, after Bakhshi et al.'s dynamic
/// gossip modeling), degree-targeted kills (adversarial settings in the
/// spirit of Doerr et al.'s fault-tolerant rumor spreading), and per-link
/// bursty message loss.

#include <vector>

#include "protocol/failure_schedule.hpp"

namespace gossip::scenario {

/// What a churn event does to each selected candidate.
enum class ChurnKind {
  kCrash,  ///< Crash alive non-source members.
  kJoin,   ///< Revive dead members.
  kLease,  ///< Expire alive members' membership leases (re-subscription
           ///< under live dynamics; a no-op over a static view snapshot).
};

/// One timed membership-lifecycle transition applied to a random share of
/// candidates.
struct ChurnEvent {
  double time = 0.0;      ///< Virtual time of the event (>= 0).
  ChurnKind kind = ChurnKind::kCrash;
  double fraction = 0.0;  ///< Independent per-candidate probability, [0, 1].
};

/// Crash/join/lease trace over the dissemination. At each event time, every
/// candidate (alive non-source member for a crash or lease expiry, dead
/// member for a join) independently transitions with the event's
/// probability. Rejoined members count as non-failed for the reliability
/// metric — the real cost of churn.
[[nodiscard]] protocol::FailureSchedulePtr churn_schedule(
    std::vector<ChurnEvent> events);

enum class TargetedMode {
  kHubs,    ///< Kill the highest-fanout members first (attack).
  kLeaves,  ///< Kill the lowest-fanout members first (control).
};

/// Degree-targeted kills: draws every member's fanout up front, pins those
/// draws on the execution, and statically crashes the `fraction` of
/// non-source members with the largest (kHubs) or smallest (kLeaves)
/// degrees; ties break toward lower node ids.
[[nodiscard]] protocol::FailureSchedulePtr targeted_kill_schedule(
    double fraction, TargetedMode mode);

struct BurstyLossParams {
  double burst_loss = 0.0;    ///< Drop probability on afflicted links during
                              ///< the burst window, [0, 1].
  double burst_start = 0.0;   ///< Window start (virtual time, >= 0).
  double burst_length = 0.0;  ///< Window length (>= 0).
  double link_fraction = 1.0; ///< Share of directed links afflicted, [0, 1].
  double base_loss = 0.0;     ///< Drop probability on afflicted links
                              ///< outside the window, [0, 1].
};

/// Adaptive adversary: at virtual time `at`, kill the `fraction` of alive
/// non-source members that have forwarded the MOST messages so far (ties
/// break toward lower node ids). Where targeted(frac, hubs) attacks the
/// degree distribution a priori, this attacks the realized dissemination —
/// the members currently carrying the spreading — so it composes with any
/// fanout family and with live membership repair.
[[nodiscard]] protocol::FailureSchedulePtr hottest_forwarder_kill_schedule(
    double fraction, double at);

/// Per-link bursty loss: a pseudorandom `link_fraction` of directed links
/// (chosen by hashing the link id with a per-execution salt) drop messages
/// with `burst_loss` during [burst_start, burst_start + burst_length) and
/// with `base_loss` otherwise. Unafflicted links never drop here (the
/// spec's global `loss` field handles uniform background loss).
[[nodiscard]] protocol::FailureSchedulePtr bursty_loss_schedule(
    BurstyLossParams params);

/// Correlated regional outage: at virtual time `at`, `outages` distinct
/// uniformly drawn clusters crash wholesale. Clusters are the contiguous
/// near-equal blocks of node ids that the WAN topology generator lays out
/// (graph::wan_hierarchy), so with topology = wan this kills entire WAN
/// regions — every bridge in or out of the region dies with it, the
/// correlated-failure regime a uniform crash fraction cannot express. The
/// partition depends only on (n, clusters), so the schedule also composes
/// with other topologies as a generic correlated-block outage. The source's
/// cluster may be drawn; the source itself never fails (Section 3).
/// Requires 1 <= outages < clusters.
[[nodiscard]] protocol::FailureSchedulePtr regional_outage_schedule(
    std::uint32_t clusters, std::uint32_t outages, double at = 0.0);

/// Applies each part in order, handing part i the substream rng.substream(i)
/// so composition order never changes any part's draws. Parts installing a
/// loss filter overwrite earlier filters (last wins).
[[nodiscard]] protocol::FailureSchedulePtr composite_schedule(
    std::vector<protocol::FailureSchedulePtr> parts);

}  // namespace gossip::scenario
