#pragma once

/// \file compare.hpp
/// Tolerance diff of two scenario result CSVs (the files written by
/// scenario::write_results_csv). Rows are matched by (scenario, case,
/// metric); numeric columns are compared within per-family tolerances so
/// two runs with different seeds, thread counts, or code versions can be
/// checked for statistical agreement without demanding bit-identical
/// output. Backs `gossip_scenarios --compare`.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace gossip::scenario {

struct CompareOptions {
  /// Absolute tolerance on reliability-like columns (means, CI bounds,
  /// success rates, per-message minima). Matches the anchor tolerance used
  /// by the paper-figure tests.
  double reliability_tolerance = 0.03;
  /// Relative tolerance on count/latency columns (messages, completion
  /// time, midrun crashes) — these scale with n and repetitions, so a
  /// fractional bound is the meaningful one.
  double relative_tolerance = 0.10;
  /// Absolute fallback for relative-family columns when either side is
  /// exactly 0.0: a relative band around zero collapses to zero width and
  /// would flag any nonzero counterpart, however trivial (0 vs 1e-9).
  /// Half an event/round is noise for every count/latency column.
  double zero_absolute_tolerance = 0.5;
};

/// One out-of-tolerance cell.
struct CellDiff {
  std::string key;     ///< "scenario / case / metric" of the row
  std::string column;  ///< CSV column name
  double a = 0.0;
  double b = 0.0;
  double allowed = 0.0;  ///< tolerance that was exceeded (same units as |a-b|)
};

struct CompareReport {
  std::size_t rows_compared = 0;
  std::vector<std::string> only_in_a;  ///< row keys missing from file B
  std::vector<std::string> only_in_b;  ///< row keys missing from file A
  std::vector<CellDiff> diffs;

  [[nodiscard]] bool ok() const noexcept {
    return rows_compared > 0 && only_in_a.empty() && only_in_b.empty() &&
           diffs.empty();
  }
};

/// Loads two result CSVs and diffs them. Throws std::runtime_error when a
/// file is unreadable or lacks the identifying columns.
[[nodiscard]] CompareReport compare_result_csvs(
    const std::string& path_a, const std::string& path_b,
    const CompareOptions& options = {});

/// Human-readable report (one line per discrepancy, summary line last).
void print_compare_report(std::ostream& os, const CompareReport& report);

}  // namespace gossip::scenario
