#pragma once

/// \file monte_carlo.hpp
/// Seeded Monte Carlo estimation of the reliability and success of
/// gossiping. Two execution backends produce the same metrics:
///   * graph backend — samples the induced gossip digraph and BFSes from the
///     source (fast; thousands of replications per second);
///   * protocol backend — runs the full message-level DES protocol
///     (slower; validates that the abstraction drops nothing).
/// Replication i always uses substream(seed, i), so estimates are identical
/// across thread counts and backends are comparable run-to-run.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/degree_distribution.hpp"
#include "obs/probe.hpp"
#include "parallel/thread_pool.hpp"
#include "protocol/flat_gossip.hpp"
#include "protocol/gossip_multicast.hpp"
#include "stats/ci.hpp"
#include "stats/summary.hpp"

namespace gossip::experiment {

struct MonteCarloOptions {
  std::size_t replications = 20;  ///< The paper runs 20 per {f, q} point.
  std::uint64_t seed = 42;
  /// Optional worker pool; nullptr runs serially.
  parallel::ThreadPool* pool = nullptr;
  /// When set, resized to `replications` and entry i receives replication
  /// i's wall-clock seconds (telemetry for run manifests). Timing is the
  /// only nondeterministic output; the estimates themselves are unaffected.
  std::vector<double>* replication_seconds = nullptr;
};

struct ReliabilityEstimate {
  stats::OnlineSummary reliability;  ///< Per-execution reliability samples.
  stats::OnlineSummary messages;     ///< Messages sent per execution.
  std::size_t replications = 0;
  std::size_t success_count = 0;     ///< Executions reaching every survivor.

  [[nodiscard]] double mean_reliability() const {
    return reliability.mean();
  }
  [[nodiscard]] double success_rate() const {
    return replications == 0 ? 0.0
                             : static_cast<double>(success_count) /
                                   static_cast<double>(replications);
  }
  [[nodiscard]] stats::Interval reliability_ci(double confidence = 0.95) const {
    return stats::mean_confidence_interval(reliability, confidence);
  }
};

/// Graph-backend estimate: per replication, sample the gossip digraph
/// (alive mask, fanouts, targets) and BFS from the source.
[[nodiscard]] ReliabilityEstimate estimate_reliability_graph(
    std::uint32_t num_nodes, const core::DegreeDistribution& fanout, double q,
    const MonteCarloOptions& options, double edge_keep_probability = 1.0);

/// Protocol-backend estimate: per replication, run the full DES protocol.
[[nodiscard]] ReliabilityEstimate estimate_reliability_protocol(
    const protocol::GossipParams& params, const MonteCarloOptions& options);

/// Flat-backend estimate: per replication, run the struct-of-arrays round
/// engine (protocol/flat_gossip.hpp) — the paper's static-failure regime at
/// million-node scale. Engines are pooled and reused, so replications after
/// the first allocate nothing; replication i still uses substream(seed, i),
/// making estimates identical across worker counts and comparable with the
/// other backends.
[[nodiscard]] ReliabilityEstimate estimate_reliability_flat(
    const protocol::FlatGossipParams& params, const MonteCarloOptions& options);

/// Traced flat-backend estimate: when `traces` is non-null it is resized to
/// `options.replications` and entry i receives replication i's full
/// per-round trajectory (obs::RoundTrace). The probe never consumes
/// randomness, so the returned estimate is bit-identical to the untraced
/// overload for the same options — tracing is free observation, not a
/// different experiment.
[[nodiscard]] ReliabilityEstimate estimate_reliability_flat(
    const protocol::FlatGossipParams& params, const MonteCarloOptions& options,
    std::vector<obs::RoundTrace>* traces);

}  // namespace gossip::experiment
