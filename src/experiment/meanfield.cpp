#include "experiment/meanfield.hpp"

#include <stdexcept>

namespace gossip::experiment {

MeanFieldEstimate estimate_reliability_meanfield(
    const protocol::FlatGossipParams& params,
    const MeanFieldOptions& options) {
  if (params.fanout == nullptr) {
    throw std::invalid_argument(
        "mean-field estimate requires a fanout distribution");
  }
  meanfield::Params mp;
  mp.num_nodes = params.num_nodes;
  mp.nonfailed_ratio = params.nonfailed_ratio;
  mp.loss_probability = params.loss_probability;
  mp.fanout_pmf = params.fanout->pmf_vector(params.lut_tail_epsilon);
  mp.extinction_threshold = options.extinction_threshold;
  mp.max_rounds = options.max_rounds;

  MeanFieldEstimate estimate;
  estimate.reliability = meanfield::predict_reliability(mp);
  estimate.extinction_probability = meanfield::extinction_probability(mp);
  estimate.trajectory = meanfield::predict_trajectory(mp);
  estimate.messages = estimate.trajectory.messages;
  estimate.rounds =
      static_cast<double>(estimate.trajectory.rounds_to_extinction);
  return estimate;
}

}  // namespace gossip::experiment
