#include "experiment/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gossip::experiment {

TextTable& TextTable::column(std::string header, int width) {
  if (width < 1) {
    throw std::invalid_argument("TextTable column width must be >= 1");
  }
  columns_.push_back({std::move(header), width});
  return *this;
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("TextTable row cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << std::setw(columns_[c].width) << cells[c];
      if (c + 1 < columns_.size()) os << "  ";
    }
    os << '\n';
  };
  std::vector<std::string> headers;
  headers.reserve(columns_.size());
  std::size_t total_width = 0;
  for (const auto& col : columns_) {
    headers.push_back(col.header);
    total_width += static_cast<std::size_t>(col.width) + 2;
  }
  print_cells(headers);
  os << std::string(total_width > 2 ? total_width - 2 : total_width, '-')
     << '\n';
  for (const auto& row : rows_) print_cells(row);
}

std::string fmt_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_pm(double value, double half_width, int precision) {
  return fmt_double(value, precision) + "+-" +
         fmt_double(half_width, precision);
}

}  // namespace gossip::experiment
