#include "experiment/component_mc.hpp"

#include <chrono>
#include <stdexcept>

#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/reachability.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/distributions.hpp"

namespace gossip::experiment {

ComponentEstimate estimate_giant_component(
    std::uint32_t num_nodes, const core::DegreeDistribution& fanout, double q,
    const MonteCarloOptions& options) {
  if (num_nodes < 2) {
    throw std::invalid_argument("component Monte Carlo requires >= 2 nodes");
  }
  if (!(q > 0.0 && q <= 1.0)) {
    throw std::invalid_argument("component Monte Carlo requires q in (0, 1]");
  }
  if (options.replications == 0) {
    throw std::invalid_argument("Monte Carlo requires replications >= 1");
  }
  const auto sampler = fanout.sampler();
  const rng::RngStream root(options.seed);

  struct Outcome {
    double frac_alive = 0.0;
    double frac_all = 0.0;
    double mean_size = 0.0;
  };
  std::vector<Outcome> outcomes(options.replications);
  if (options.replication_seconds != nullptr) {
    options.replication_seconds->assign(options.replications, 0.0);
  }
  const auto run_one = [&](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();  // LINT-ALLOW(wall-clock): per-replication telemetry; feeds replication_seconds only, never a metric
    auto rng = root.substream(i);
    const auto g =
        graph::configuration_model_from_sampler(num_nodes, sampler, rng);
    std::vector<std::uint8_t> alive(num_nodes, 0);
    std::uint32_t alive_count = 0;
    for (std::uint32_t v = 0; v < num_nodes; ++v) {
      alive[v] = rng.bernoulli(q) ? 1 : 0;
      if (alive[v]) ++alive_count;
    }
    if (alive_count == 0) {
      outcomes[i] = {0.0, 0.0, 0.0};
    } else {
      const auto comps = graph::undirected_components(g, alive);
      // E[size of a random member's component], failed members counting 0:
      // sum over components of size^2 / n (the paper's Eq. (2) estimand).
      double sum_sq = 0.0;
      for (const auto size : comps.sizes) {
        sum_sq += static_cast<double>(size) * static_cast<double>(size);  // LINT-ALLOW(float-accumulation): within one replication, component order fixed by undirected_components; cross-replication folds below use OnlineSummary
      }
      outcomes[i] = {static_cast<double>(comps.giant_size) /
                         static_cast<double>(alive_count),
                     static_cast<double>(comps.giant_size) /
                         static_cast<double>(num_nodes),
                     sum_sq / static_cast<double>(num_nodes)};
    }
    if (options.replication_seconds != nullptr) {
      (*options.replication_seconds)[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -  // LINT-ALLOW(wall-clock): per-replication telemetry; feeds replication_seconds only, never a metric
                                        start)
              .count();
    }
  };
  if (options.pool != nullptr) {
    parallel::parallel_for(*options.pool, options.replications, run_one);
  } else {
    for (std::size_t i = 0; i < options.replications; ++i) run_one(i);
  }

  ComponentEstimate estimate;
  estimate.replications = options.replications;
  for (const auto& o : outcomes) {
    estimate.giant_fraction_alive.add(o.frac_alive);
    estimate.giant_fraction_all.add(o.frac_all);
    estimate.mean_component_size.add(o.mean_size);
  }
  return estimate;
}

ComponentEstimate estimate_giant_component_occupancy(
    std::uint32_t num_nodes, const core::DegreeDistribution& fanout,
    const core::OccupancyFunction& occupancy,
    const MonteCarloOptions& options) {
  if (num_nodes < 2) {
    throw std::invalid_argument("component Monte Carlo requires >= 2 nodes");
  }
  if (options.replications == 0) {
    throw std::invalid_argument("Monte Carlo requires replications >= 1");
  }
  const auto sampler = fanout.sampler();
  const rng::RngStream root(options.seed);

  struct Outcome {
    double frac_alive = 0.0;
    double frac_all = 0.0;
  };
  std::vector<Outcome> outcomes(options.replications);
  const auto run_one = [&](std::size_t i) {
    auto rng = root.substream(i);
    const auto g =
        graph::configuration_model_from_sampler(num_nodes, sampler, rng);
    std::vector<std::uint8_t> alive(num_nodes, 0);
    std::uint32_t alive_count = 0;
    for (std::uint32_t v = 0; v < num_nodes; ++v) {
      const double qk =
          occupancy(static_cast<std::int64_t>(g.out_degree(v)));
      alive[v] = rng.bernoulli(qk) ? 1 : 0;
      if (alive[v]) ++alive_count;
    }
    if (alive_count == 0) {
      outcomes[i] = {0.0, 0.0};
      return;
    }
    const auto comps = graph::undirected_components(g, alive);
    outcomes[i] = {
        static_cast<double>(comps.giant_size) /
            static_cast<double>(alive_count),
        static_cast<double>(comps.giant_size) / static_cast<double>(num_nodes)};
  };
  if (options.pool != nullptr) {
    parallel::parallel_for(*options.pool, options.replications, run_one);
  } else {
    for (std::size_t i = 0; i < options.replications; ++i) run_one(i);
  }

  ComponentEstimate estimate;
  estimate.replications = options.replications;
  for (const auto& o : outcomes) {
    estimate.giant_fraction_alive.add(o.frac_alive);
    estimate.giant_fraction_all.add(o.frac_all);
  }
  return estimate;
}

SuccessCountResult run_success_count_experiment(
    const SuccessCountParams& params, const MonteCarloOptions& options) {
  if (params.num_nodes < 2) {
    throw std::invalid_argument("success-count requires >= 2 nodes");
  }
  if (params.fanout == nullptr) {
    throw std::invalid_argument("success-count requires a fanout distribution");
  }
  if (!(params.nonfailed_ratio > 0.0 && params.nonfailed_ratio <= 1.0)) {
    throw std::invalid_argument("success-count requires q in (0, 1]");
  }
  if (params.executions < 1 || params.simulations < 1) {
    throw std::invalid_argument(
        "success-count requires executions >= 1 and simulations >= 1");
  }
  const auto sampler = params.fanout->sampler();
  const rng::RngStream root(options.seed);
  const graph::NodeId source = 0;

  SuccessCountResult result(params.executions);
  std::uint64_t total_count = 0;

  for (std::size_t s = 0; s < params.simulations; ++s) {
    auto sim_rng = root.substream(s);
    // Persistent crash pattern for this simulation (source forced alive so
    // the delivery metric is well defined; it is excluded from X below).
    std::vector<std::uint8_t> alive(params.num_nodes, 0);
    for (std::uint32_t v = 0; v < params.num_nodes; ++v) {
      alive[v] =
          (v == source || sim_rng.bernoulli(params.nonfailed_ratio)) ? 1 : 0;
    }
    std::vector<std::uint32_t> counts(params.num_nodes, 0);

    for (std::int64_t t = 0; t < params.executions; ++t) {
      auto exec_rng = sim_rng.substream(static_cast<std::uint64_t>(t) + 1);
      if (params.metric == SuccessMetric::kGiantMembership) {
        const auto g = graph::configuration_model_from_sampler(
            params.num_nodes, sampler, exec_rng);
        const auto comps = graph::undirected_components(g, alive);
        for (std::uint32_t v = 0; v < params.num_nodes; ++v) {
          if (alive[v] && comps.in_giant(v)) ++counts[v];
        }
      } else {
        graph::GossipGraphParams gp;
        gp.num_nodes = params.num_nodes;
        gp.source = source;
        gp.alive_probability = 1.0;  // mask supplied below
        // Build the digraph manually honoring the persistent mask: alive
        // nodes draw fanouts, crashed nodes stay silent.
        graph::DigraphBuilder builder(params.num_nodes);
        for (std::uint32_t v = 0; v < params.num_nodes; ++v) {
          if (!alive[v]) continue;
          std::int64_t fanout = sampler(exec_rng);
          if (fanout <= 0) continue;
          fanout = std::min<std::int64_t>(
              fanout, static_cast<std::int64_t>(params.num_nodes) - 1);
          for (const auto tgt : rng::sample_distinct_excluding(
                   exec_rng, static_cast<std::size_t>(fanout),
                   params.num_nodes, v)) {
            builder.add_edge(v, tgt);
          }
        }
        const auto g = std::move(builder).build();
        const auto reach = graph::directed_reach(g, source);
        for (std::uint32_t v = 0; v < params.num_nodes; ++v) {
          if (alive[v] && reach.is_reached(v)) ++counts[v];
        }
      }
    }

    for (std::uint32_t v = 0; v < params.num_nodes; ++v) {
      if (v == source || !alive[v]) continue;
      result.histogram.add(counts[v]);
      total_count += counts[v];
      ++result.member_samples;
    }
  }
  result.mean_count =
      result.member_samples == 0
          ? 0.0
          : static_cast<double>(total_count) /
                static_cast<double>(result.member_samples);
  return result;
}

}  // namespace gossip::experiment
