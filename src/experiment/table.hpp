#pragma once

/// \file table.hpp
/// Fixed-width ASCII tables — the output format every bench uses to print
/// the paper's series. Keeping the emitter shared guarantees the benches
/// stay visually comparable and machine-greppable.

#include <iosfwd>
#include <string>
#include <vector>

namespace gossip::experiment {

class TextTable {
 public:
  /// Declares a column; returns *this for chaining.
  TextTable& column(std::string header, int width);

  /// Appends a row; cell count must equal the column count.
  void add_row(std::vector<std::string> cells);

  /// Writes header, separator, and all rows.
  void print(std::ostream& os) const;

 private:
  struct Column {
    std::string header;
    int width;
  };
  std::vector<Column> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (the benches' default cell format).
[[nodiscard]] std::string fmt_double(double value, int precision = 4);

/// Formats "a +- b" (mean and CI half-width).
[[nodiscard]] std::string fmt_pm(double value, double half_width,
                                 int precision = 4);

}  // namespace gossip::experiment
