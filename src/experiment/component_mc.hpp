#pragma once

/// \file component_mc.hpp
/// Component-based Monte Carlo — the measurement the paper's own simulation
/// plots. Section 5.1 says "we calculate the size of giant component for
/// each case": one execution samples the random graph induced by gossiping
/// (degrees f_i ~ P, site-percolated by the non-failed ratio q) and reports
/// the giant component's share of the non-failed members.
///
/// This differs from the *delivery* metric (experiment/monte_carlo.hpp):
/// the source's cascade dies out entirely with probability ~ 1 - S, so
/// unconditional delivered reliability averages ~ S^2, while the giant
/// component's relative size concentrates on S itself. The Figs. 4-5
/// benches print both; EXPERIMENTS.md discusses the gap.

#include <cstdint>

#include "core/degree_distribution.hpp"
#include "core/percolation.hpp"
#include "experiment/monte_carlo.hpp"
#include "stats/histogram.hpp"

namespace gossip::experiment {

struct ComponentEstimate {
  /// Giant size / non-failed count per replication (the paper's metric).
  stats::OnlineSummary giant_fraction_alive;
  /// Giant size / n per replication (Callaway's S).
  stats::OnlineSummary giant_fraction_all;
  /// Mean component size of a node chosen uniformly among ALL n members
  /// (failed members count 0): sum_c size_c^2 / n per replication. Below
  /// the transition this estimates the paper's Eq. (2) <s>.
  stats::OnlineSummary mean_component_size;
  std::size_t replications = 0;
};

/// Samples configuration-model graphs with degrees from `fanout`, applies
/// site percolation with occupancy q, and measures the giant component.
[[nodiscard]] ComponentEstimate estimate_giant_component(
    std::uint32_t num_nodes, const core::DegreeDistribution& fanout, double q,
    const MonteCarloOptions& options);

/// As estimate_giant_component, but each node survives with probability
/// occupancy(realized degree) — the Monte Carlo counterpart of
/// core::analyze_occupancy_percolation (targeted-failure scenarios).
[[nodiscard]] ComponentEstimate estimate_giant_component_occupancy(
    std::uint32_t num_nodes, const core::DegreeDistribution& fanout,
    const core::OccupancyFunction& occupancy, const MonteCarloOptions& options);

/// Which per-member event defines "received" for the success-count
/// distribution (paper Figs. 6-7).
enum class SuccessMetric {
  /// Member lies in the giant component of that execution's graph — the
  /// metric whose counts follow B(t, S) (what the paper's histograms show).
  kGiantMembership,
  /// Member is actually reached from the source through forwarding —
  /// protocol ground truth; cascade die-out deflates the counts to ~B(t, S^2)
  /// overall.
  kSourceDelivery,
};

struct SuccessCountParams {
  std::uint32_t num_nodes = 2000;  ///< The paper uses 2000.
  core::DegreeDistributionPtr fanout;
  double nonfailed_ratio = 1.0;
  std::int64_t executions = 20;    ///< t per simulation; the paper uses 20.
  std::size_t simulations = 100;   ///< Repetitions; the paper uses 100.
  SuccessMetric metric = SuccessMetric::kGiantMembership;
};

struct SuccessCountResult {
  stats::IntHistogram histogram;   ///< X samples pooled over members & sims.
  std::size_t member_samples = 0;  ///< Number of X samples recorded.
  double mean_count = 0.0;         ///< Mean X.

  explicit SuccessCountResult(std::int64_t max_value)
      : histogram(max_value) {}
};

/// Runs the Figs. 6-7 experiment: per simulation draw one persistent alive
/// mask, run t executions, record X (the per-member count of executions in
/// which the member "received") for every non-failed member except the
/// source, pooled across simulations.
[[nodiscard]] SuccessCountResult run_success_count_experiment(
    const SuccessCountParams& params, const MonteCarloOptions& options);

}  // namespace gossip::experiment
