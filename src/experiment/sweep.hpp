#pragma once

/// \file sweep.hpp
/// Parameter grids shared by the benches, including the exact grids the
/// paper sweeps in its evaluation section.

#include <vector>

namespace gossip::experiment {

/// `count` evenly spaced values from lo to hi inclusive (count >= 2), or
/// {lo} when count == 1.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, int count);

/// Arithmetic progression lo, lo+step, ... up to and including hi (within
/// half a step of floating-point slack).
[[nodiscard]] std::vector<double> arange_inclusive(double lo, double hi,
                                                   double step);

/// The paper's Figs. 4-5 fanout grid: "varied from 1.10 to 6.7 with an
/// incremental step 0.4" (Section 5.1).
[[nodiscard]] std::vector<double> paper_fanout_grid();

/// The paper's q grids: Figs. 4a/5a use {0.1, 0.3, 0.5, 1.0}; Figs. 4b/5b
/// use {0.4, 0.6, 0.8, 1.0}.
[[nodiscard]] std::vector<double> paper_q_grid_a();
[[nodiscard]] std::vector<double> paper_q_grid_b();

}  // namespace gossip::experiment
