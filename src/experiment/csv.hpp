#pragma once

/// \file csv.hpp
/// Minimal CSV emitter. Every bench mirrors its printed table into a CSV
/// file (under ./results by default) so figures can be re-plotted without
/// re-running the sweep.

#include <fstream>
#include <string>
#include <vector>

namespace gossip::experiment {

class CsvWriter {
 public:
  /// Opens `path` for writing (parent directory must exist) and writes the
  /// header row. Throws std::runtime_error on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; cell count must match the header.
  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void write_line(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Creates `dir` if missing and returns dir + "/" + filename. The benches
/// use this to drop CSVs under ./results without failing on first run.
[[nodiscard]] std::string csv_path_in(const std::string& dir,
                                      const std::string& filename);

}  // namespace gossip::experiment
