#include "experiment/sweep.hpp"

#include <stdexcept>

namespace gossip::experiment {

std::vector<double> linspace(double lo, double hi, int count) {
  if (count < 1) {
    throw std::invalid_argument("linspace requires count >= 1");
  }
  if (count == 1) return {lo};
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (int i = 0; i < count; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  out.back() = hi;  // land exactly on the endpoint
  return out;
}

std::vector<double> arange_inclusive(double lo, double hi, double step) {
  if (!(step > 0.0)) {
    throw std::invalid_argument("arange_inclusive requires step > 0");
  }
  std::vector<double> out;
  for (double v = lo; v <= hi + 0.5 * step; v += step) {
    out.push_back(v);
  }
  return out;
}

std::vector<double> paper_fanout_grid() {
  return arange_inclusive(1.1, 6.7, 0.4);
}

std::vector<double> paper_q_grid_a() { return {0.1, 0.3, 0.5, 1.0}; }

std::vector<double> paper_q_grid_b() { return {0.4, 0.6, 0.8, 1.0}; }

}  // namespace gossip::experiment
