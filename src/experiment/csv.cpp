#include "experiment/csv.hpp"

#include <filesystem>
#include <stdexcept>

namespace gossip::experiment {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  if (header.empty()) {
    throw std::invalid_argument("CsvWriter requires a non-empty header");
  }
  write_line(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter row cell count mismatch");
  }
  write_line(cells);
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    // RFC 4180: cells containing separators, quotes, or line breaks are
    // quoted, with embedded quotes doubled — scenario labels like
    // "z=4.0,q=0.9" must not corrupt result CSVs.
    const std::string& cell = cells[i];
    if (cell.find_first_of(",\"\n\r") != std::string::npos) {
      out_ << '"';
      for (const char c : cell) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << cell;
    }
  }
  out_ << '\n';
}

std::string csv_path_in(const std::string& dir, const std::string& filename) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return dir + "/" + filename;
}

}  // namespace gossip::experiment
