#pragma once

/// \file meanfield.hpp
/// Analytic-engine counterpart of the Monte-Carlo estimators: evaluates the
/// deterministic mean-field model (math/meanfield.hpp) for the exact
/// parameter set the flat engine simulates, so scenario cases can swap
/// `engine = montecarlo` for `engine = meanfield` (microseconds instead of
/// replications) or run `engine = both` and report the disagreement. The
/// translation from protocol::FlatGossipParams is the single place where a
/// core::DegreeDistribution becomes the truncated pmf vector the base-layer
/// model consumes.

#include <cstdint>

#include "math/meanfield.hpp"
#include "protocol/flat_gossip.hpp"

namespace gossip::experiment {

struct MeanFieldOptions {
  /// Expected newly-informed members below which the recurrence ends.
  double extinction_threshold = 0.5;
  std::uint64_t max_rounds = 10000;
};

/// Deterministic prediction: no replications, no confidence interval. The
/// headline `reliability` is conditional on take-off (the regime every
/// pinned figure anchor lives in); `extinction_probability` quantifies the
/// early-die-out mass a Monte-Carlo mean averages in.
struct MeanFieldEstimate {
  double reliability = 0.0;  ///< Fixed-point prediction, conditional.
  double messages = 0.0;     ///< Expected total sends (trajectory sum).
  double rounds = 0.0;       ///< Expected rounds to extinction.
  double extinction_probability = 0.0;
  /// Per-round expected trajectory, round 0 = injection — the analytic
  /// mirror of the obs round-trace schema.
  meanfield::Trajectory trajectory;
};

/// Evaluates the mean-field model for the flat engine's parameter set
/// (same n, q, loss, fanout distribution, and LUT tail truncation). Throws
/// std::invalid_argument on a null fanout or parameters outside the
/// model's domain.
[[nodiscard]] MeanFieldEstimate estimate_reliability_meanfield(
    const protocol::FlatGossipParams& params,
    const MeanFieldOptions& options = {});

}  // namespace gossip::experiment
