#include "experiment/monte_carlo.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/reachability.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/rng_stream.hpp"

namespace gossip::experiment {

namespace {

struct RepOutcome {
  double reliability = 0.0;
  double messages = 0.0;
  bool success = false;
};

/// Runs `replications` independent evaluations of `body(i, rng)` (seeded by
/// substream i) and folds them deterministically in index order. Per-rep
/// wall times land in options.replication_seconds when requested.
template <typename Body>
ReliabilityEstimate run_replications_indexed(const MonteCarloOptions& options,
                                             const Body& body) {
  if (options.replications == 0) {
    throw std::invalid_argument("Monte Carlo requires replications >= 1");
  }
  const rng::RngStream root(options.seed);
  std::vector<RepOutcome> outcomes(options.replications);
  if (options.replication_seconds != nullptr) {
    options.replication_seconds->assign(options.replications, 0.0);
  }
  const auto run_one = [&](std::size_t i) {
    auto rep_rng = root.substream(i);
    if (options.replication_seconds == nullptr) {
      outcomes[i] = body(i, rep_rng);
      return;
    }
    const auto start = std::chrono::steady_clock::now();  // LINT-ALLOW(wall-clock): per-replication telemetry; feeds replication_seconds only, never a metric
    outcomes[i] = body(i, rep_rng);
    (*options.replication_seconds)[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)  // LINT-ALLOW(wall-clock): per-replication telemetry; feeds replication_seconds only, never a metric
            .count();
  };
  if (options.pool != nullptr) {
    parallel::parallel_for(*options.pool, options.replications, run_one);
  } else {
    for (std::size_t i = 0; i < options.replications; ++i) run_one(i);
  }

  ReliabilityEstimate estimate;
  estimate.replications = options.replications;
  for (const auto& o : outcomes) {
    estimate.reliability.add(o.reliability);
    estimate.messages.add(o.messages);
    if (o.success) ++estimate.success_count;
  }
  return estimate;
}

/// Index-agnostic wrapper for bodies that only need the replication stream.
template <typename Body>
ReliabilityEstimate run_replications(const MonteCarloOptions& options,
                                     const Body& body) {
  return run_replications_indexed(
      options, [&](std::size_t, rng::RngStream& rng) { return body(rng); });
}

}  // namespace

ReliabilityEstimate estimate_reliability_graph(
    std::uint32_t num_nodes, const core::DegreeDistribution& fanout, double q,
    const MonteCarloOptions& options, double edge_keep_probability) {
  if (num_nodes < 2) {
    throw std::invalid_argument("graph Monte Carlo requires >= 2 nodes");
  }
  graph::GossipGraphParams gp;
  gp.num_nodes = num_nodes;
  gp.source = 0;
  gp.alive_probability = q;
  gp.edge_keep_probability = edge_keep_probability;
  const auto sampler = fanout.sampler();

  return run_replications(options, [&](rng::RngStream& rng) {
    const auto gg = graph::make_gossip_digraph(gp, sampler, rng);
    const auto reach = graph::directed_reach(gg.graph, gg.source);
    std::uint32_t alive_received = 0;
    for (graph::NodeId v = 0; v < num_nodes; ++v) {
      if (gg.alive[v] && reach.is_reached(v)) ++alive_received;
    }
    RepOutcome o;
    o.reliability = static_cast<double>(alive_received) /
                    static_cast<double>(gg.alive_count);
    o.messages = static_cast<double>(gg.graph.num_edges());
    o.success = alive_received == gg.alive_count;
    return o;
  });
}

ReliabilityEstimate estimate_reliability_protocol(
    const protocol::GossipParams& params, const MonteCarloOptions& options) {
  return run_replications(options, [&](rng::RngStream& rng) {
    const auto exec = protocol::run_gossip_once(params, rng);
    RepOutcome o;
    o.reliability = exec.reliability;
    o.messages = static_cast<double>(exec.messages_sent);
    o.success = exec.success;
    return o;
  });
}

ReliabilityEstimate estimate_reliability_flat(
    const protocol::FlatGossipParams& params,
    const MonteCarloOptions& options) {
  return estimate_reliability_flat(params, options, nullptr);
}

ReliabilityEstimate estimate_reliability_flat(
    const protocol::FlatGossipParams& params, const MonteCarloOptions& options,
    std::vector<obs::RoundTrace>* traces) {
  // Engine free-list: a worker checks one out per replication and returns
  // it, so engines (and their workspaces) are reused instead of rebuilt.
  // Outcomes depend only on the replication substream, never on which
  // engine ran it, so estimates stay deterministic under any worker count.
  std::mutex engines_mutex;
  std::vector<std::unique_ptr<protocol::FlatGossipEngine>> engines;
  engines.push_back(
      std::make_unique<protocol::FlatGossipEngine>(params));  // validate now
  if (traces != nullptr) {
    traces->assign(options.replications, obs::RoundTrace{});
  }

  return run_replications_indexed(options, [&](std::size_t i,
                                               rng::RngStream& rng) {
    std::unique_ptr<protocol::FlatGossipEngine> engine;
    {
      const std::lock_guard<std::mutex> lock(engines_mutex);
      if (!engines.empty()) {
        engine = std::move(engines.back());
        engines.pop_back();
      }
    }
    if (engine == nullptr) {
      engine = std::make_unique<protocol::FlatGossipEngine>(params);
    }
    obs::Probe* probe = traces == nullptr ? nullptr : &(*traces)[i];
    const auto exec = engine->run_once(rng, probe);
    {
      const std::lock_guard<std::mutex> lock(engines_mutex);
      engines.push_back(std::move(engine));
    }
    RepOutcome o;
    o.reliability = exec.reliability;
    o.messages = static_cast<double>(exec.messages_sent);
    o.success = exec.success;
    return o;
  });
}

}  // namespace gossip::experiment
